// Concurrency stress suite. Built into its own binary (dagt_concurrency_tests,
// label "concurrency") so it can be compiled alone under ThreadSanitizer:
//
//   cmake -B build-tsan -S . -DDAGT_SANITIZE=thread
//   cmake --build build-tsan --target dagt_concurrency_tests
//   ./build-tsan/tests/dagt_concurrency_tests
//
// The tests drive the shared-state surfaces of the serving stack from many
// threads at once: request coalescing + metrics snapshots, design/bundle
// registry mutation during queries, the global BufferPool / Workspace
// recycling handoff, and parallelFor itself. Assertions are deliberately
// coarse (totals, finiteness) — the point is the interleaving; TSan and the
// DAGT_CHECKS contracts do the fine-grained judging.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "core/batch_prefetcher.hpp"
#include "core/dataset.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_engine.hpp"
#include "tensor/expr.hpp"
#include "tensor/ops.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"

namespace dagt::serve {
namespace {

/// parallelFor is serial unless the thread count is raised (this box may
/// report one core); force real fan-out for the duration of each test.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n)
      : saved_(parallelThreadCount()) {
    parallelThreadCount() = n;
  }
  ~ThreadCountGuard() { parallelThreadCount() = saved_; }

 private:
  std::size_t saved_;
};

// -- Tiny untrained bundle fixture -------------------------------------------
//
// The stress tests don't care about prediction quality, so the bundle wraps
// an untrained (randomly initialized) deterministic dac23 model: cheap to
// build, cheap to forward, and every output must still be finite.

const features::DataConfig& dataConfig() {
  static features::DataConfig config = [] {
    features::DataConfig c;
    c.designScale = 0.2f;
    return c;
  }();
  return config;
}

const features::DataPipeline& pipeline() {
  static features::DataPipeline* p = new features::DataPipeline(dataConfig());
  return *p;
}

const features::DesignData& target7() {
  static features::DesignData d = pipeline().build("smallboom");
  return d;
}

BundleManifest tinyManifest() {
  BundleManifest manifest;
  manifest.modelKind = "dac23";
  manifest.variant = "shared";
  manifest.strategy = "stress";
  manifest.targetNode = netlist::TechNode::k7nm;
  manifest.vocabularyNodes = dataConfig().nodes;
  manifest.pinFeatureDim = pipeline().featureDim();
  manifest.model.gnnHidden = 16;
  manifest.model.cnnBaseChannels = 4;
  manifest.model.cnnDim = 8;
  manifest.model.headHidden = 16;
  manifest.model.imageResolution = dataConfig().imageResolution;
  manifest.features = dataConfig().features;
  return manifest;
}

const std::string& bundleDir() {
  static std::string dir = [] {
    const BundleManifest manifest = tinyManifest();
    const auto model = ModelBundle::instantiate(manifest);
    // Per-process directory: ctest runs each gtest case as its own process,
    // and concurrent cases must not rewrite a bundle another one is loading.
    const std::string d =
        (std::filesystem::temp_directory_path() /
         ("dagt_stress_bundle_" + std::to_string(::getpid())))
            .string();
    ModelBundle::save(*model, manifest, d);
    return d;
  }();
  return dir;
}

std::unique_ptr<PredictionEngine> makeEngine(std::int32_t workers,
                                             std::int64_t maxBatch) {
  EngineConfig config;
  config.workerThreads = workers;
  config.maxBatch = maxBatch;
  config.maxWaitUs = 100;
  auto engine = std::make_unique<PredictionEngine>(config);
  engine->addBundleFromDir(bundleDir());
  return engine;
}

// -- Engine-level stress -----------------------------------------------------

TEST(ConcurrencyStress, CoalescedClientsMetricsPollerAndPoolChurn) {
  ThreadCountGuard guard(4);
  auto engine = makeEngine(/*workers=*/2, /*maxBatch=*/16);
  const features::DesignData& reference = target7();
  const std::int64_t endpointCount = engine->loadDesign(
      "smallboom", reference.netlist, reference.node, reference.placement,
      "r1");
  ASSERT_GT(endpointCount, 8);

  constexpr int kClients = 4;
  constexpr int kItersPerClient = 12;
  std::atomic<std::uint64_t> issued{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int iter = 0; iter < kItersPerClient; ++iter) {
        std::vector<std::int64_t> endpoints;
        for (int k = 0; k < 3; ++k) {
          endpoints.push_back((c * 31 + iter * 7 + k) % endpointCount);
        }
        const auto out = engine->predictEndpoints("smallboom", endpoints);
        if (out.size() != endpoints.size()) failed = true;
        for (const float v : out) {
          if (!std::isfinite(v)) failed = true;
        }
        issued.fetch_add(endpoints.size(), std::memory_order_relaxed);
      }
    });
  }
  // Metrics poller: snapshots race against in-flight recording — every
  // snapshot must still be internally sane (no torn counters).
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      const MetricsSnapshot snap = engine->metrics();
      if (snap.requests > 0 && snap.batches == 0) failed = true;
      if (snap.cacheHitRate < 0.0 || snap.cacheHitRate > 1.0) failed = true;
      std::this_thread::yield();
    }
  });
  // Pool churn: allocate/release tensor buffers and trim the global pool
  // while the serve path is acquiring its own scratch.
  threads.emplace_back([&] {
    for (int i = 0; i < 40; ++i) {
      tensor::Workspace ws;
      tensor::Tensor t = tensor::Tensor::zeros({64, 32});
      tensor::Tensor u = tensor::add(t, t);
      if (u.numel() != 64 * 32) failed = true;
      if (i % 8 == 0) tensor::BufferPool::global().trim();
    }
  });
  for (auto& t : threads) t.join();

  EXPECT_FALSE(failed.load());
  const MetricsSnapshot final = engine->metrics();
  EXPECT_EQ(final.requests, issued.load());
  EXPECT_GT(final.batches, 0u);
}

TEST(ConcurrencyStress, RegistryMutationDuringQueries) {
  ThreadCountGuard guard(4);
  auto engine = makeEngine(/*workers=*/2, /*maxBatch=*/8);
  const features::DesignData& reference = target7();
  const std::int64_t endpointCount = engine->loadDesign(
      "smallboom", reference.netlist, reference.node, reference.placement,
      "r1");

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  // Clients keep querying while the registry churns underneath them.
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      for (int iter = 0; iter < 10; ++iter) {
        const float v = engine->predictEndpoint(
            "smallboom", (c * 13 + iter) % endpointCount);
        if (!std::isfinite(v)) failed = true;
      }
    });
  }
  // Re-load the same design+revision (feature-cache hit path) and register
  // additional design keys concurrently with the queries.
  threads.emplace_back([&] {
    for (int iter = 0; iter < 6; ++iter) {
      const std::int64_t n = engine->loadDesign(
          "smallboom", reference.netlist, reference.node, reference.placement,
          "r1");
      if (n != endpointCount) failed = true;
    }
  });
  threads.emplace_back([&] {
    for (int iter = 0; iter < 3; ++iter) {
      const std::string key = "alias" + std::to_string(iter);
      const std::int64_t n = engine->loadDesign(
          key, reference.netlist, reference.node, reference.placement, "r1");
      if (n != endpointCount) failed = true;
      const float v = engine->predictEndpoint(key, 0);
      if (!std::isfinite(v)) failed = true;
    }
  });
  // Readers of the node registry.
  threads.emplace_back([&] {
    for (int iter = 0; iter < 20; ++iter) {
      const auto nodes = engine->nodes();
      if (nodes.size() != 1u) failed = true;
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const MetricsSnapshot snap = engine->metrics();
  EXPECT_GT(snap.cacheHits, 0u);  // the revision "r1" re-loads must hit
}

// -- Tensor-layer stress -----------------------------------------------------

TEST(ConcurrencyStress, BufferPoolCrossThreadChurn) {
  auto& pool = tensor::BufferPool::global();
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Mixed sizes so threads contend on the same buckets.
        const std::size_t n = 64u << ((t + i) % 4);
        auto handle = pool.acquire(n);
        handle->data()[0] = static_cast<float>(t);
        handle->data()[n - 1] = static_cast<float>(i);
        if (handle->capacity() < n) failed = true;
        if (i % 32 == 0) {
          tensor::Workspace ws;
          auto inner = pool.acquire(n);
          inner->data()[0] = 1.0f;
        }
      }
    });
  }
  // Main thread trims and reads stats concurrently.
  for (int i = 0; i < 20; ++i) {
    pool.trim();
    const tensor::PoolStats stats = pool.stats();
    if (stats.hitRate() < 0.0 || stats.hitRate() > 1.0) failed = true;
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const tensor::PoolStats stats = pool.stats();
  EXPECT_GE(stats.acquisitions(), static_cast<std::uint64_t>(kThreads * kIters));
}

TEST(ConcurrencyStress, WorkspaceDrainHandsBuffersToOtherThreads) {
  auto& pool = tensor::BufferPool::global();
  pool.trim();
  pool.resetStats();
  constexpr std::size_t kSize = 1u << 15;  // distinctive bucket

  std::thread producer([&] {
    tensor::Workspace ws;
    for (int i = 0; i < 4; ++i) {
      auto handle = pool.acquire(kSize);
      handle->data()[0] = 42.0f;
    }
    // Workspace destructor drains the cached buffer to the global pool.
  });
  producer.join();

  std::thread consumer([&] {
    auto handle = pool.acquire(kSize);
    // The buffer (and the producer's write) must be visible here.
    EXPECT_EQ(handle->data()[0], 42.0f);
  });
  consumer.join();

  const tensor::PoolStats stats = pool.stats();
  EXPECT_GE(stats.poolReuses, 1u);
}

TEST(ConcurrencyStress, FusionProgramsCompileAndReplayConcurrently) {
  // Serve workers share one ProgramCache per module: concurrent misses on
  // the same signature must compile exactly once, replays of one immutable
  // FusedProgram must be safe from many threads, and every fused result
  // must equal the eager chain computed on the same thread. Three batch
  // shapes rotate per iteration so compile/hit/replay interleave.
  using tensor::Tensor;
  namespace expr = tensor::expr;
  constexpr int kThreads = 8;
  constexpr int kIters = 100;
  Rng init(61);
  const Tensor w = Tensor::randn({24, 16}, init);
  const Tensor bias = Tensor::randn({16}, init);
  expr::ProgramCache cache;
  std::atomic<int> compiles{0};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      tensor::NoGradGuard noGrad;
      Rng rng(1000 + t);
      for (int it = 0; it < kIters; ++it) {
        const std::int64_t batch = 2 + (t + it) % 3;
        const Tensor x = Tensor::randn({batch, 24}, rng);
        expr::SigHash sig;
        sig.mixShape(x.shape());
        sig.mixTensor(w);
        const auto program = cache.getOrCompile(sig.h, [&] {
          compiles.fetch_add(1, std::memory_order_relaxed);
          expr::Capture cap;
          const Tensor lx = cap.input(x);
          const Tensor lw = cap.input(w);
          const Tensor lb = cap.input(bias);
          const Tensor out =
              tensor::sigmoid(tensor::addBias(tensor::matmul(lx, lw), lb));
          return cap.compile({&out});
        });
        const Tensor fused = program->runOne({x, w, bias});
        const Tensor eager =
            tensor::sigmoid(tensor::addBias(tensor::matmul(x, w), bias));
        if (fused.shape() != eager.shape() ||
            std::memcmp(fused.data(), eager.data(),
                        static_cast<std::size_t>(fused.numel()) *
                            sizeof(float)) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  // One compile per distinct batch shape: the cache mutex serializes
  // concurrent first misses.
  EXPECT_EQ(compiles.load(), 3);
}

TEST(ConcurrencyStress, ParallelForDisjointWritesAndReduction) {
  ThreadCountGuard guard(4);
  constexpr std::size_t kN = 1 << 12;
  std::vector<float> out(kN, 0.0f);
  std::atomic<std::uint64_t> visits{0};
  for (int round = 0; round < 8; ++round) {
    parallelFor(0, kN, [&](std::size_t i) {
      out[i] += static_cast<float>(i % 7);
      visits.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(visits.load(), 8u * kN);
  double sum = 0.0;
  for (const float v : out) sum += v;
  double expected = 0.0;
  for (std::size_t i = 0; i < kN; ++i) expected += 8.0 * (i % 7);
  EXPECT_DOUBLE_EQ(sum, expected);
}

TEST(ConcurrencyStress, ParallelForPropagatesFirstError) {
  ThreadCountGuard guard(4);
  EXPECT_THROW(
      parallelFor(0, 1024,
                          [&](std::size_t i) {
                            if (i == 500) {
                              throw CheckError("stress failure at 500");
                            }
                          }),
      CheckError);
}

TEST(ConcurrencyStress, BatchPrefetcherDeliversEveryStepInOrder) {
  // Hammer the async producer/consumer handoff: the producer allocates a
  // real payload per step (so TSan sees the memory cross threads) and the
  // consumer asserts strict ordering and exact count.
  constexpr std::size_t kSteps = 2000;
  struct Step {
    std::size_t seq = 0;
    std::vector<float> payload;
  };
  for (int round = 0; round < 4; ++round) {
    std::size_t produced = 0;
    core::BatchPrefetcher<Step> prefetcher(
        [&](Step& out) {
          if (produced >= kSteps) return false;
          out.seq = produced++;
          out.payload.assign(64, static_cast<float>(out.seq));
          return true;
        },
        /*async=*/true);
    Step step;
    std::size_t consumed = 0;
    while (prefetcher.next(step)) {
      ASSERT_EQ(step.seq, consumed);
      ASSERT_EQ(step.payload.at(63), static_cast<float>(consumed));
      ++consumed;
    }
    EXPECT_EQ(consumed, kSteps);
  }
}

TEST(ConcurrencyStress, BatchPrefetcherAbandonedMidStreamShutsDownCleanly) {
  // The consumer may stop early (exception paths, test teardown); the
  // destructor must unblock and join a producer stuck on a full slot.
  struct Step {
    std::vector<float> payload;
  };
  for (int round = 0; round < 16; ++round) {
    core::BatchPrefetcher<Step> prefetcher(
        [&](Step& out) {
          out.payload.assign(256, 1.0f);
          return true;  // endless stream
        },
        /*async=*/true);
    Step step;
    ASSERT_TRUE(prefetcher.next(step));
    // Drop the prefetcher with the producer mid-flight.
  }
}

TEST(ConcurrencyStress, BatchPrefetcherPropagatesProducerException) {
  struct Step {
    int value = 0;
  };
  std::size_t produced = 0;
  core::BatchPrefetcher<Step> prefetcher(
      [&](Step& out) -> bool {
        if (produced++ == 3) throw CheckError("producer exploded");
        out.value = static_cast<int>(produced);
        return true;
      },
      /*async=*/true);
  Step step;
  std::size_t got = 0;
  try {
    while (prefetcher.next(step)) ++got;
    FAIL() << "expected the producer's exception";
  } catch (const CheckError&) {
  }
  EXPECT_EQ(got, 3u);
}

TEST(ConcurrencyStress, ShardedTrainingWithPrefetchUnderThreads) {
  // End-to-end data-parallel training: async batch producer feeding 4
  // gradient shards over 4 workers — replicas share weight storage with
  // the master, gradients tree-reduce between steps. This is the TSan
  // surface for the whole train-side pipeline.
  ThreadCountGuard guard(4);
  const auto& d7 = target7();
  core::TimingDataset trainSet({&d7});
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.endpointCap = 16;
  tc.gradShards = 4;
  tc.prefetch = true;
  tc.model.gnnHidden = 8;
  tc.model.cnnBaseChannels = 2;
  tc.model.cnnDim = 4;
  tc.model.headHidden = 8;
  const core::Trainer trainer(trainSet, tc);
  core::TrainStats stats;
  auto model = trainer.train(core::Strategy::kAdvOnly, &stats);
  ASSERT_NE(model, nullptr);
  for (const float loss : stats.epochLoss) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

}  // namespace
}  // namespace dagt::serve
