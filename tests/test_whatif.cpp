// What-if service suite (label "whatif"). Covers the session's determinism
// contract (edited predictions bitwise equal to a cold rebuild), cone-based
// feature-cache invalidation exactness (edits outside an endpoint's cone
// keep its cached artifacts — pointer-shared, not recomputed — while edits
// inside invalidate it), commit/revert baselines, the metrics surface, and
// a reader/writer stress that tools/verify.sh also runs under
// ThreadSanitizer:
//
//   cmake -B build-tsan -S . -DDAGT_SANITIZE=thread
//   cmake --build build-tsan --target dagt_whatif_tests

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "designgen/design_suite.hpp"
#include "features/design_data.hpp"
#include "netlist/cell_library.hpp"
#include "obs/trace.hpp"
#include "place/placer.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_engine.hpp"
#include "sta/netlist_edits.hpp"
#include "whatif/whatif_session.hpp"

namespace dagt::whatif {
namespace {

// -- Tiny untrained bundle fixture -------------------------------------------
//
// Prediction quality is irrelevant here — the contracts under test are
// bitwise determinism and cache bookkeeping — so the bundle wraps an
// untrained deterministic dac23 model: cheap to build, cheap to forward.

const features::DataConfig& dataConfig() {
  static features::DataConfig config = [] {
    features::DataConfig c;
    c.designScale = 0.2f;
    return c;
  }();
  return config;
}

const std::string& bundleDir() {
  static std::string dir = [] {
    const features::DataPipeline pipeline(dataConfig());
    serve::BundleManifest manifest;
    manifest.modelKind = "dac23";
    manifest.variant = "shared";
    manifest.strategy = "whatif_tests";
    manifest.targetNode = netlist::TechNode::k7nm;
    manifest.vocabularyNodes = dataConfig().nodes;
    manifest.pinFeatureDim = pipeline.featureDim();
    manifest.model.gnnHidden = 16;
    manifest.model.cnnBaseChannels = 4;
    manifest.model.cnnDim = 8;
    manifest.model.headHidden = 16;
    manifest.model.imageResolution = dataConfig().imageResolution;
    manifest.features = dataConfig().features;
    const auto model = serve::ModelBundle::instantiate(manifest);
    // Per-process directory: ctest runs each case as its own process.
    const std::string d =
        (std::filesystem::temp_directory_path() /
         ("dagt_whatif_bundle_" + std::to_string(::getpid())))
            .string();
    serve::ModelBundle::save(*model, manifest, d);
    return d;
  }();
  return dir;
}

/// A placed suite design plus an engine with the bundle registered.
/// batching=false by default: caller-thread forwards with the design-keyed
/// batch seed make repeated identical queries bitwise reproducible, which
/// is what the parity assertions lean on.
struct SessionFixture {
  designgen::DesignSuite suite{0.2f};
  netlist::TechNode node = netlist::TechNode::k7nm;
  netlist::CellLibrary lib = netlist::CellLibrary::makeNode(node);
  netlist::Netlist nl;
  place::PlacementResult placement;
  serve::PredictionEngine engine;

  explicit SessionFixture(const char* name = "or1200", bool batching = false)
      : nl([&] {
          const auto& entry = suite.entry(name);
          return suite.buildNetlist(entry, lib);
        }()),
        engine([&] {
          serve::EngineConfig config;
          config.batching = batching;
          config.workerThreads = batching ? 2 : 1;
          return config;
        }()) {
    place::PlacerConfig placerConfig;
    placerConfig.seed ^= suite.entry(name).spec.seed;
    placement = place::Placer::place(nl, placerConfig);
    engine.addBundleFromDir(bundleDir());
  }
};

/// First cell with a larger drive variant, skipping `skip` candidates.
netlist::CellId findResizable(const netlist::Netlist& nl, int skip = 0) {
  for (netlist::CellId c = 0; c < nl.numCells(); ++c) {
    if (sta::upsizedVariant(nl, c) == netlist::kInvalidCellType) continue;
    if (skip-- == 0) return c;
  }
  return netlist::kInvalidId;
}

/// First net insertFanoutBuffer will accept (>= 4 sinks).
netlist::NetId findBufferable(const netlist::Netlist& nl) {
  for (netlist::NetId n = 0; n < nl.numNets(); ++n) {
    if (nl.net(n).sinks.size() >= 4) return n;
  }
  return netlist::kInvalidId;
}

void expectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::memcmp(&a[i], &b[i], sizeof(float)), 0)
        << what << ": endpoint " << i << " " << a[i] << " vs " << b[i];
  }
}

// -- Determinism contract ----------------------------------------------------

TEST(WhatIfSession, EditStreamMatchesColdRebuildBitwise) {
  SessionFixture f;
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);
  const std::int64_t numEndpoints = session.numEndpoints();
  ASSERT_GT(numEndpoints, 8);
  std::vector<std::int64_t> all(static_cast<std::size_t>(numEndpoints));
  std::iota(all.begin(), all.end(), std::int64_t{0});

  const Rect die = f.placement.dieArea;
  int coldSerial = 0;
  const auto checkParity = [&](const char* what) {
    const std::vector<float> incremental = session.predict(all);
    f.engine.loadDesign("cold", session.netlist(), f.node, f.placement,
                        "c" + std::to_string(coldSerial++));
    const std::vector<float> cold = f.engine.predictEndpoints("cold", all);
    expectBitwiseEqual(incremental, cold, what);
  };

  // One edit of each kind, parity after each: resize (pure cone update),
  // move (re-extracted cones + image diff), buffer (structural rebuild).
  const netlist::CellId toResize = findResizable(session.netlist());
  ASSERT_NE(toResize, netlist::kInvalidId);
  ASSERT_TRUE(session.resizeCell(toResize, /*up=*/true));
  checkParity("after resize");
  EXPECT_FALSE(session.lastSync().structuralRebuild);

  const netlist::CellId toMove = findResizable(session.netlist(), 3);
  ASSERT_NE(toMove, netlist::kInvalidId);
  session.moveCell(toMove, Point{die.hi.x, die.hi.y});
  checkParity("after move");
  EXPECT_FALSE(session.lastSync().structuralRebuild);

  const netlist::NetId toBuffer = findBufferable(session.netlist());
  ASSERT_NE(toBuffer, netlist::kInvalidId);
  ASSERT_TRUE(session.insertBuffer(toBuffer).inserted);
  checkParity("after buffer insertion");
  EXPECT_TRUE(session.lastSync().structuralRebuild);
}

// -- Cone-based invalidation exactness ---------------------------------------

TEST(WhatIfSession, EditOutsideConeKeepsCachedEndpointsExactly) {
  SessionFixture f;
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);
  const std::int64_t numEndpoints = session.numEndpoints();
  const std::vector<float> baseline = session.predictAll();
  const auto before = f.engine.currentSnapshot("wi");
  ASSERT_NE(before, nullptr);

  const netlist::CellId cell = findResizable(session.netlist());
  ASSERT_NE(cell, netlist::kInvalidId);
  const netlist::PinId editedPin = session.netlist().cell(cell).outputPin;
  ASSERT_TRUE(session.resizeCell(cell, /*up=*/true));
  session.sync();
  const auto& res = session.lastSync();
  EXPECT_FALSE(res.structuralRebuild);
  EXPECT_EQ(res.imagesReused + res.imagesRebuilt, numEndpoints);

  // The edit's blast radius must be real but local: some endpoints dirty,
  // and on a multi-hundred-endpoint design not all of them.
  const std::set<std::int64_t> dirty(res.dirtyEndpoints.begin(),
                                     res.dirtyEndpoints.end());
  ASSERT_FALSE(dirty.empty());
  ASSERT_LT(static_cast<std::int64_t>(dirty.size()), numEndpoints);

  // "Inside the cone" direction: every endpoint whose fanout cone contains
  // the resized cell's output pin must be flagged dirty.
  const auto after = f.engine.currentSnapshot("wi");
  ASSERT_NE(after, nullptr);
  ASSERT_NE(after.get(), before.get());
  int coveringEndpoints = 0;
  for (std::int64_t e = 0; e < numEndpoints; ++e) {
    const auto& cone = after->data.paths()[static_cast<std::size_t>(e)].conePins;
    if (std::find(cone.begin(), cone.end(), editedPin) == cone.end()) continue;
    ++coveringEndpoints;
    EXPECT_TRUE(dirty.count(e)) << "endpoint " << e
                                << " contains the edited pin but was kept";
  }
  ASSERT_GT(coveringEndpoints, 0);

  // "Outside the cone" direction: kept endpoints are bit-identical — same
  // prediction as before the edit, and the cached masked image is the SAME
  // allocation as the prior snapshot's, not a recomputed copy.
  const std::vector<float> afterAll = session.predictAll();
  const auto beforeSlots = before->dataset->exportImages(before->data);
  const auto afterSlots = after->dataset->exportImages(after->data);
  ASSERT_EQ(beforeSlots.size(), afterSlots.size());
  int kept = 0;
  for (std::int64_t e = 0; e < numEndpoints; ++e) {
    if (dirty.count(e)) continue;
    ++kept;
    ASSERT_EQ(std::memcmp(&baseline[static_cast<std::size_t>(e)],
                          &afterAll[static_cast<std::size_t>(e)],
                          sizeof(float)),
              0)
        << "kept endpoint " << e << " changed prediction";
    ASSERT_NE(beforeSlots[static_cast<std::size_t>(e)], nullptr);
    EXPECT_EQ(afterSlots[static_cast<std::size_t>(e)].get(),
              beforeSlots[static_cast<std::size_t>(e)].get())
        << "kept endpoint " << e << " lost its shared image slot";
  }
  ASSERT_GT(kept, 0);
}

// -- Commit / revert ---------------------------------------------------------

TEST(WhatIfSession, RevertRestoresBaselinePredictionsBitwise) {
  SessionFixture f;
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);
  const std::vector<float> baseline = session.predictAll();
  const std::int64_t baseCells = session.netlist().numCells();

  const Rect die = f.placement.dieArea;
  ASSERT_TRUE(session.resizeCell(findResizable(session.netlist()), true));
  session.moveCell(findResizable(session.netlist(), 5),
                   Point{die.lo.x, die.lo.y});
  ASSERT_TRUE(session.insertBuffer(findBufferable(session.netlist())).inserted);
  EXPECT_EQ(session.netlist().numCells(), baseCells + 1);

  session.revert();
  EXPECT_EQ(session.netlist().numCells(), baseCells);
  expectBitwiseEqual(session.predictAll(), baseline, "after revert");
}

TEST(WhatIfSession, CommitMovesTheRevertBaseline) {
  SessionFixture f;
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);

  ASSERT_TRUE(session.resizeCell(findResizable(session.netlist()), true));
  session.commit();
  const std::vector<float> committed = session.predictAll();

  const Rect die = f.placement.dieArea;
  session.moveCell(findResizable(session.netlist(), 7),
                   Point{die.hi.x, die.lo.y});
  session.revert();
  // Revert lands on the committed state, not the construction-time one.
  expectBitwiseEqual(session.predictAll(), committed, "after commit+revert");
}

// -- Metrics and tracing surface ---------------------------------------------

TEST(WhatIfSession, MetricsExposeEditAndConeCounters) {
  SessionFixture f;
  obs::TraceRegistry::global().setEnabled(true);
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);

  ASSERT_TRUE(session.resizeCell(findResizable(session.netlist()), true));
  session.predict({0, 1});
  session.moveCell(findResizable(session.netlist(), 2),
                   Point{f.placement.dieArea.hi.x, f.placement.dieArea.hi.y});
  session.predict({2});

  const serve::MetricsSnapshot snap = session.metrics();
  EXPECT_EQ(snap.whatifEdits, 2u);
  EXPECT_EQ(snap.whatifRepredicts, 2u);
  EXPECT_GE(snap.coneUpdates, 2u);
  EXPECT_EQ(snap.coneStructuralRebuilds, 0u);
  EXPECT_GT(snap.staIncrementalUpdates, 0u);
  EXPECT_GE(snap.staPinsVisitedTotal, snap.staPinsVisitedLast);
  std::uint64_t histTotal = 0;
  for (const std::uint64_t bucket : snap.staConeHist) histTotal += bucket;
  EXPECT_EQ(histTotal, snap.staIncrementalUpdates);

  // With tracing on, the snapshot carries whatif/ and sta/ span aggregates.
  bool sawEdit = false, sawSync = false;
  for (const auto& span : snap.traceSpans) {
    sawEdit = sawEdit || span.name == "whatif/edit";
    sawSync = sawSync || span.name == "whatif/sync";
  }
  EXPECT_TRUE(sawEdit);
  EXPECT_TRUE(sawSync);
  obs::TraceRegistry::global().setEnabled(false);
}

// -- Reader/writer stress (ThreadSanitizer target) ---------------------------

/// parallelFor is serial unless the thread count is raised; force real
/// fan-out for the duration of the test.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) : saved_(parallelThreadCount()) {
    parallelThreadCount() = n;
  }
  ~ThreadCountGuard() { parallelThreadCount() = saved_; }

 private:
  std::size_t saved_;
};

TEST(WhatIfConcurrency, ReadersPredictWhileSessionEdits) {
  ThreadCountGuard guard(4);
  SessionFixture f("or1200", /*batching=*/true);
  WhatIfSession session(f.engine, "wi", f.nl, f.node, f.placement);
  const std::int64_t numEndpoints = session.numEndpoints();
  ASSERT_GT(numEndpoints, 8);

  // Readers hammer the engine (snapshot lookups + lazy masked-image fills
  // + request coalescing) while the session swaps snapshots under them.
  // In-flight queries finish against whichever snapshot they grabbed; the
  // assertion here is coarse (finiteness) — TSan judges the interleaving.
  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(0xbeef0000ULL + static_cast<std::uint64_t>(r));
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<std::int64_t> query(4);
        for (auto& e : query) {
          e = static_cast<std::int64_t>(
              rng.uniformInt(static_cast<std::uint64_t>(numEndpoints)));
        }
        for (const float v : f.engine.predictEndpoints("wi", query)) {
          if (!std::isfinite(v)) failed.store(true);
        }
      }
    });
  }

  Rng rng(0xec0ULL);
  const Rect die = f.placement.dieArea;
  for (int edit = 0; edit < 6; ++edit) {
    if (edit % 3 == 2) {
      session.moveCell(
          static_cast<netlist::CellId>(rng.uniformInt(
              static_cast<std::uint64_t>(session.netlist().numCells()))),
          Point{static_cast<float>(rng.uniform(die.lo.x, die.hi.x)),
                static_cast<float>(rng.uniform(die.lo.y, die.hi.y))});
    } else {
      const netlist::CellId cell = findResizable(session.netlist(), edit);
      if (cell == netlist::kInvalidId) continue;
      session.resizeCell(cell, edit % 2 == 0);
    }
    for (const float v : session.predict({0, 1, 2})) {
      if (!std::isfinite(v)) failed.store(true);
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace dagt::whatif
