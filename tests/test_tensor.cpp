#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"

namespace dagt::tensor {
namespace {

/// Numeric gradient check: compares autograd dLoss/dInput against central
/// finite differences for every element of `input`.
void gradCheck(Tensor& input, const std::function<Tensor()>& lossFn,
               float tol = 2e-2f, float eps = 1e-3f) {
  input.zeroGrad();
  Tensor loss = lossFn();
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();
  const Tensor analytic = input.grad();
  ASSERT_TRUE(analytic.defined());

  float* p = input.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float saved = p[i];
    p[i] = saved + eps;
    const float up = lossFn().item();
    p[i] = saved - eps;
    const float down = lossFn().item();
    p[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float got = analytic.data()[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(got)});
    EXPECT_NEAR(got, numeric, tol * scale)
        << "element " << i << " analytic=" << got << " numeric=" << numeric;
  }
}

Rng testRng(std::uint64_t seed = 42) { return Rng(seed); }

TEST(Tensor, ConstructorsAndShape) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(0), 2);
  EXPECT_EQ(z.dim(-1), 3);
  EXPECT_EQ(z.ndim(), 2);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(z.data()[i], 0.0f);

  Tensor f = Tensor::full({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(f.data()[i], 2.5f);

  Tensor v = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(v.at(1, 0), 3.0f);
  EXPECT_EQ(v.at(1, 1), 4.0f);

  Tensor s = Tensor::scalar(7.0f);
  EXPECT_EQ(s.item(), 7.0f);
}

TEST(Tensor, FromVectorRejectsWrongCount) {
  EXPECT_THROW((Tensor::fromVector({2, 2}, {1, 2, 3})), CheckError);
}

TEST(Tensor, RandnIsSeedDeterministic) {
  Rng a(7), b(7);
  Tensor ta = Tensor::randn({16}, a);
  Tensor tb = Tensor::randn({16}, b);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(ta.data()[i], tb.data()[i]);
  }
}

TEST(Tensor, DetachBreaksGraph) {
  Tensor a = Tensor::ones({2}, /*requiresGrad=*/true);
  Tensor b = mulScalar(a, 3.0f).detach();
  EXPECT_FALSE(b.requiresGrad());
  Tensor c = sumAll(mul(b, b));
  EXPECT_FALSE(c.requiresGrad());
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor a = Tensor::ones({3}, true);
  Tensor b = mulScalar(a, 2.0f);
  EXPECT_THROW(b.backward(), CheckError);
}

TEST(Ops, AddSubMulDivForward) {
  Tensor a = Tensor::fromVector({4}, {1, 2, 3, 4});
  Tensor b = Tensor::fromVector({4}, {4, 3, 2, 1});
  EXPECT_EQ(add(a, b).data()[0], 5.0f);
  EXPECT_EQ(sub(a, b).data()[3], 3.0f);
  EXPECT_EQ(mul(a, b).data()[1], 6.0f);
  EXPECT_FLOAT_EQ(div(a, b).data()[2], 1.5f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_THROW((add(a, b)), CheckError);
  EXPECT_THROW((matmul(a, a)), CheckError);
}

TEST(Ops, GradAddMulChain) {
  Rng rng = testRng();
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor y = Tensor::randn({3, 4}, rng, 1.0f, false);
  gradCheck(x, [&] { return sumAll(mul(add(x, y), sub(x, y))); });
}

TEST(Ops, GradDiv) {
  Rng rng = testRng();
  Tensor x = Tensor::randn({6}, rng, 1.0f, true);
  Tensor y = addScalar(Tensor::randn({6}, rng, 0.2f), 2.0f);
  gradCheck(x, [&] { return sumAll(div(x, y)); });
  gradCheck(x, [&] { return sumAll(div(y, addScalar(square(x), 1.0f))); });
}

TEST(Ops, GradUnaryFunctions) {
  Rng rng = testRng(3);
  Tensor x = Tensor::randn({8}, rng, 0.8f, true);
  gradCheck(x, [&] { return sumAll(tanhOp(x)); });
  gradCheck(x, [&] { return sumAll(sigmoid(x)); });
  gradCheck(x, [&] { return sumAll(expOp(x)); });
  gradCheck(x, [&] { return sumAll(softplus(x)); });
  gradCheck(x, [&] { return sumAll(square(x)); });
  gradCheck(x, [&] { return sumAll(logOp(addScalar(square(x), 1.0f))); });
}

TEST(Ops, GradReluAwayFromKink) {
  // Values chosen away from 0 so the finite difference is well-defined.
  Tensor x = Tensor::fromVector({4}, {-1.0f, -0.5f, 0.5f, 2.0f}, true);
  gradCheck(x, [&] { return sumAll(relu(x)); });
  gradCheck(x, [&] { return sumAll(leakyRelu(x, 0.1f)); });
}

TEST(Ops, GradPowInt) {
  Rng rng = testRng(5);
  Tensor x = Tensor::randn({5}, rng, 0.7f, true);
  gradCheck(x, [&] { return sumAll(powInt(x, 3)); });
  gradCheck(x, [&] { return sumAll(powInt(x, 5)); });
}

TEST(Ops, GradMatmulBothSides) {
  Rng rng = testRng(9);
  Tensor a = Tensor::randn({3, 5}, rng, 0.5f, true);
  Tensor b = Tensor::randn({5, 2}, rng, 0.5f, true);
  gradCheck(a, [&] { return sumAll(square(matmul(a, b))); });
  gradCheck(b, [&] { return sumAll(square(matmul(a, b))); });
}

TEST(Ops, MatmulForwardKnown) {
  Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::fromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, GradBroadcastHelpers) {
  Rng rng = testRng(11);
  Tensor m = Tensor::randn({4, 3}, rng, 1.0f, true);
  Tensor bias = Tensor::randn({3}, rng, 1.0f, true);
  Tensor col = Tensor::randn({4}, rng, 1.0f, true);
  gradCheck(m, [&] { return sumAll(square(addBias(m, bias))); });
  gradCheck(bias, [&] { return sumAll(square(addBias(m, bias))); });
  gradCheck(col, [&] { return sumAll(square(addColVec(m, col))); });
  Tensor row = Tensor::randn({1, 3}, rng, 1.0f, true);
  gradCheck(row, [&] { return sumAll(square(repeatRows(row, 5))); });
}

TEST(Ops, GradReductions) {
  Rng rng = testRng(13);
  Tensor x = Tensor::randn({3, 4}, rng, 1.0f, true);
  gradCheck(x, [&] { return sumAll(square(x)); });
  gradCheck(x, [&] { return meanAll(square(x)); });
  gradCheck(x, [&] { return sumAll(square(sumDim0(x))); });
  gradCheck(x, [&] { return sumAll(square(meanDim0(x))); });
  gradCheck(x, [&] { return sumAll(square(sumDim1(x))); });
  gradCheck(x, [&] { return sumAll(square(logSumExpDim1(x))); });
}

TEST(Ops, LogSumExpMatchesNaive) {
  Tensor x = Tensor::fromVector({2, 3}, {0, 1, 2, 100, 100, 100});
  Tensor lse = logSumExpDim1(x);
  const float expect0 =
      std::log(std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f));
  EXPECT_NEAR(lse.data()[0], expect0, 1e-5f);
  EXPECT_NEAR(lse.data()[1], 100.0f + std::log(3.0f), 1e-4f);
}

TEST(Ops, GradTranspose) {
  Rng rng = testRng(17);
  Tensor x = Tensor::randn({3, 5}, rng, 1.0f, true);
  gradCheck(x, [&] { return sumAll(square(transpose2d(x))); });
  Tensor t = transpose2d(x);
  EXPECT_EQ(t.dim(0), 5);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.at(4, 2), x.at(2, 4));
}

TEST(Ops, GradShapeOps) {
  Rng rng = testRng(19);
  Tensor a = Tensor::randn({2, 3}, rng, 1.0f, true);
  Tensor b = Tensor::randn({2, 3}, rng, 1.0f, true);
  gradCheck(a, [&] { return sumAll(square(concat0({a, b}))); });
  gradCheck(a, [&] { return sumAll(square(concat1({a, b}))); });
  gradCheck(b, [&] { return sumAll(square(concat1({a, b}))); });
  gradCheck(a, [&] { return sumAll(square(sliceCols(concat1({a, b}), 2, 5))); });
  gradCheck(a, [&] { return sumAll(square(sliceRows(a, 0, 1))); });
  gradCheck(a, [&] { return sumAll(square(reshape(a, {3, 2}))); });
}

TEST(Ops, ConcatForwardLayout) {
  Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::fromVector({2, 1}, {9, 8});
  Tensor c = concat1({a, b});
  EXPECT_EQ(c.dim(1), 3);
  EXPECT_FLOAT_EQ(c.at(0, 2), 9.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 3.0f);
  Tensor d = concat0({a, a});
  EXPECT_EQ(d.dim(0), 4);
  EXPECT_FLOAT_EQ(d.at(3, 1), 4.0f);
}

TEST(Ops, GradIndexSelectWithDuplicates) {
  Rng rng = testRng(23);
  Tensor x = Tensor::randn({4, 3}, rng, 1.0f, true);
  const std::vector<std::int64_t> idx = {0, 2, 2, 3, 0};
  gradCheck(x, [&] { return sumAll(square(indexSelect0(x, idx))); });
}

TEST(Ops, IndexSelectOutOfRangeThrows) {
  Tensor x = Tensor::zeros({4, 3});
  const std::vector<std::int64_t> tooBig = {4};
  const std::vector<std::int64_t> negative = {-1};
  EXPECT_THROW((indexSelect0(x, tooBig)), CheckError);
  EXPECT_THROW((indexSelect0(x, negative)), CheckError);
}

TEST(Ops, GradGatherRowsMulti) {
  Rng rng = testRng(29);
  Tensor a = Tensor::randn({3, 4}, rng, 1.0f, true);
  Tensor b = Tensor::randn({2, 4}, rng, 1.0f, true);
  const std::vector<std::pair<std::int32_t, std::int64_t>> idx = {
      {0, 1}, {1, 0}, {0, 2}, {1, 1}, {0, 1}};
  gradCheck(a, [&] { return sumAll(square(gatherRowsMulti({a, b}, idx))); });
  gradCheck(b, [&] { return sumAll(square(gatherRowsMulti({a, b}, idx))); });
}

TEST(Ops, GradSegmentSum) {
  Rng rng = testRng(31);
  Tensor src = Tensor::randn({5, 3}, rng, 1.0f, true);
  const std::vector<std::int64_t> seg = {0, 1, 1, 2, 0};
  Tensor out = segmentSum(src, seg, 4);
  EXPECT_EQ(out.dim(0), 4);
  // Segment 3 is empty -> all zeros.
  for (std::int64_t c = 0; c < 3; ++c) EXPECT_EQ(out.at(3, c), 0.0f);
  gradCheck(src, [&] { return sumAll(square(segmentSum(src, seg, 4))); });
}

TEST(Ops, SegmentSumForwardKnown) {
  Tensor src = Tensor::fromVector({3, 2}, {1, 2, 10, 20, 100, 200});
  Tensor out = segmentSum(src, {1, 1, 0}, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 100.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 22.0f);
}

TEST(Ops, GradSegmentMax) {
  // Distinct values so the argmax is stable under the finite-difference eps.
  Tensor src = Tensor::fromVector(
      {5, 2}, {1.0f, -2.0f, 3.0f, 0.5f, -1.0f, 4.0f, 2.0f, 2.5f, 0.0f, 1.0f},
      true);
  const std::vector<std::int64_t> seg = {0, 0, 1, 1, 1};
  Tensor out = segmentMax(src, seg, 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 4.0f);
  // Empty segment clamps to zero.
  EXPECT_FLOAT_EQ(out.at(2, 0), 0.0f);
  gradCheck(src, [&] { return sumAll(square(segmentMax(src, seg, 3))); });
}

TEST(Ops, GradConv2d) {
  Rng rng = testRng(37);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng, 0.7f, true);
  Tensor w = Tensor::randn({3, 2, 3, 3}, rng, 0.4f, true);
  Tensor b = Tensor::randn({3}, rng, 0.4f, true);
  auto loss = [&] { return sumAll(square(conv2d(x, w, b, 2, 1))); };
  gradCheck(x, loss);
  gradCheck(w, loss);
  gradCheck(b, loss);
}

TEST(Ops, Conv2dShapes) {
  Tensor x = Tensor::zeros({1, 3, 32, 32});
  Tensor w = Tensor::zeros({8, 3, 3, 3});
  Tensor out = conv2d(x, w, Tensor(), 2, 1);
  EXPECT_EQ(out.shape(), (Shape{1, 8, 16, 16}));
  Tensor out2 = conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(out2.shape(), (Shape{1, 8, 32, 32}));
}

TEST(Ops, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input channel.
  Tensor x = Tensor::fromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::ones({1, 1, 1, 1});
  Tensor out = conv2d(x, w, Tensor(), 1, 0);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], x.data()[i]);
  }
}

TEST(Ops, GradMaxPoolAndGlobalAvg) {
  Rng rng = testRng(41);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng, 1.0f, true);
  gradCheck(x, [&] { return sumAll(square(maxPool2d(x))); });
  gradCheck(x, [&] { return sumAll(square(globalAvgPool(x))); });
  EXPECT_EQ(maxPool2d(x).shape(), (Shape{2, 3, 2, 2}));
  EXPECT_EQ(globalAvgPool(x).shape(), (Shape{2, 3}));
}

// ---------------------------------------------------------------------------
// Zero-copy views: aliasing semantics and gradient scatter
// ---------------------------------------------------------------------------

TEST(Views, ReshapeSliceDetachShareStorage) {
  Tensor a = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = reshape(a, {3, 2});
  EXPECT_TRUE(r.sharesStorageWith(a));
  EXPECT_EQ(r.data(), a.data());  // whole-buffer view: same pointer
  a.data()[0] = 42.0f;            // writes through the base...
  EXPECT_FLOAT_EQ(r.data()[0], 42.0f);  // ...are visible in the view
  r.data()[5] = -1.0f;            // and vice versa
  EXPECT_FLOAT_EQ(a.at(1, 2), -1.0f);

  Tensor s = sliceRows(a, 1, 2);  // contiguous row run at offset 3
  EXPECT_TRUE(s.sharesStorageWith(a));
  EXPECT_EQ(s.data(), a.data() + 3);
  EXPECT_FLOAT_EQ(s.at(0, 2), -1.0f);

  Tensor f = flattenView(s);
  EXPECT_TRUE(f.sharesStorageWith(a));
  EXPECT_EQ(f.data(), s.data());
  EXPECT_EQ(f.numel(), 3);

  Tensor d = a.detach();          // O(1) alias without the tape
  EXPECT_TRUE(d.sharesStorageWith(a));
  EXPECT_FALSE(d.requiresGrad());

  Tensor c = a.clone();           // the deep copy lives here now
  EXPECT_FALSE(c.sharesStorageWith(a));
  c.data()[0] = 7.0f;
  EXPECT_FLOAT_EQ(a.data()[0], 42.0f);
}

TEST(Views, SliceGradScattersAtOffset) {
  Tensor x = Tensor::fromVector({4}, {1, 2, 3, 4}, /*requiresGrad=*/true);
  Tensor head = sliceRows(x, 0, 2);
  Tensor tail = sliceRows(x, 2, 4);
  Tensor loss = sumAll(add(mulScalar(head, 2.0f), mulScalar(tail, 3.0f)));
  loss.backward();
  const Tensor g = x.grad();
  EXPECT_FLOAT_EQ(g.data()[0], 2.0f);
  EXPECT_FLOAT_EQ(g.data()[1], 2.0f);
  EXPECT_FLOAT_EQ(g.data()[2], 3.0f);
  EXPECT_FLOAT_EQ(g.data()[3], 3.0f);
}

TEST(Views, ReshapeGradMatchesBaseLayout) {
  Tensor x = Tensor::fromVector({2, 2}, {1, 1, 1, 1}, /*requiresGrad=*/true);
  Tensor r = flattenView(x);
  Tensor weights = Tensor::fromVector({4}, {1, 2, 3, 4});
  Tensor loss = sumAll(mul(r, weights));
  loss.backward();
  const Tensor g = x.grad();
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(g.data()[i], static_cast<float>(i + 1));
  }
}

TEST(Views, GradCheckThroughViewChain) {
  // reshape -> sliceRows -> flattenView, all O(1) aliases of x's buffer:
  // backward must scatter level-by-level back into x's (dense) grad.
  Rng rng = testRng(29);
  Tensor x = Tensor::randn({4, 6}, rng, 1.0f, true);
  gradCheck(x, [&] {
    Tensor r = reshape(x, {6, 4});
    Tensor s = sliceRows(r, 1, 5);
    Tensor f = flattenView(s);
    return sumAll(square(f));
  });
}

TEST(Views, ViewsAreConstantTime) {
  // A view of a large tensor must not touch the payload: its data pointer
  // is the base's (plus offset), not a fresh buffer.
  Tensor big = Tensor::zeros({1 << 12, 64});
  Tensor r = reshape(big, {1 << 13, 32});
  Tensor s = sliceRows(big, 100, 200);
  Tensor f = flattenView(big);
  EXPECT_EQ(r.data(), big.data());
  EXPECT_EQ(s.data(), big.data() + 100 * 64);
  EXPECT_EQ(f.data(), big.data());
}

// ---------------------------------------------------------------------------
// Buffer pool and workspace recycling
// ---------------------------------------------------------------------------

TEST(Pool, WorkspaceCachesAndDrainsToGlobalPool) {
  BufferPool::global().trim();
  BufferPool::global().resetStats();
  {
    Workspace ws;
    { Storage s = Storage::allocate(100); (void)s; }  // heap alloc, parked
    EXPECT_EQ(ws.cachedBuffers(), 1u);
    { Storage s = Storage::allocate(100); (void)s; }  // same bucket: cached
    EXPECT_EQ(BufferPool::global().stats().workspaceReuses, 1u);
    EXPECT_EQ(BufferPool::global().stats().heapAllocs, 1u);
  }
  // Workspace destruction drains its cache into the global free lists.
  { Storage s = Storage::allocate(100); (void)s; }
  EXPECT_EQ(BufferPool::global().stats().poolReuses, 1u);
  EXPECT_EQ(BufferPool::global().stats().heapAllocs, 1u);
}

TEST(Pool, SteadyStateForwardIsAllocationFree) {
  Rng rng = testRng(91);
  Tensor x = Tensor::randn({8, 16}, rng, 1.0f, false);
  Tensor w = Tensor::randn({16, 16}, rng, 1.0f, false);
  auto run = [&] {
    NoGradGuard guard;
    return sumAll(tanhOp(matmul(x, w))).item();
  };
  Workspace workspace;
  const float first = run();  // warm-up populates the workspace cache
  BufferPool::global().resetStats();
  const float second = run();
  const PoolStats stats = BufferPool::global().stats();
  EXPECT_GT(stats.acquisitions(), 0u);
  EXPECT_EQ(stats.heapAllocs, 0u);  // every temporary came from the cache
  EXPECT_GT(stats.workspaceReuses, 0u);
  // Pooled buffers are zero-filled on acquire, so reuse is bit-exact.
  EXPECT_EQ(first, second);
}

TEST(Pool, ReuseIsBitDeterministic) {
  Rng rng = testRng(92);
  Tensor x = Tensor::randn({5, 7}, rng, 1.0f, false);
  Workspace workspace;
  NoGradGuard guard;
  const Tensor reference = tanhOp(matmul(x, transpose2d(x)));
  std::vector<float> want = reference.toVector();
  for (int iter = 0; iter < 16; ++iter) {
    const Tensor got = tanhOp(matmul(x, transpose2d(x)));
    ASSERT_EQ(got.toVector(), want) << "iteration " << iter;
  }
}

TEST(Ops, NoGradGuardSuppressesTape) {
  Tensor a = Tensor::ones({3}, true);
  {
    NoGradGuard guard;
    Tensor b = mulScalar(a, 2.0f);
    EXPECT_FALSE(b.requiresGrad());
  }
  Tensor c = mulScalar(a, 2.0f);
  EXPECT_TRUE(c.requiresGrad());
}

TEST(Ops, GradAccumulatesAcrossUses) {
  // x used twice: gradient must be the sum of both paths.
  Tensor x = Tensor::fromVector({2}, {1.0f, 2.0f}, true);
  Tensor loss = sumAll(add(mulScalar(x, 2.0f), mulScalar(x, 3.0f)));
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 5.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], 5.0f);
}

TEST(Ops, DeepChainBackwardSurvives) {
  // 2000-deep op chain: the iterative topo sort must not overflow the stack.
  Tensor x = Tensor::scalar(1.0f, true);
  Tensor y = x;
  for (int i = 0; i < 2000; ++i) y = addScalar(y, 0.001f);
  Tensor loss = sumAll(y);
  loss.backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 1.0f);
}

}  // namespace
}  // namespace dagt::tensor
