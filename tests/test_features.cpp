#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "features/design_data.hpp"
#include "features/feature_builder.hpp"
#include "features/path_extractor.hpp"
#include "features/pin_graph.hpp"

namespace dagt::features {
namespace {

/// One shared small pipeline for the whole file (data generation is the
/// expensive part).
const DataPipeline& pipeline() {
  static DataPipeline* p = [] {
    DataConfig config;
    config.designScale = 0.25f;
    return new DataPipeline(config);
  }();
  return *p;
}

const DesignData& arm9() {
  static DesignData d = pipeline().build("arm9");
  return d;
}

const DesignData& jpeg() {
  static DesignData d = pipeline().build("jpeg");
  return d;
}

TEST(PinGraph, CoversEveryPinExactlyOnce) {
  const auto& d = arm9();
  const PinGraph& g = *d.graph;
  std::set<netlist::PinId> seen;
  for (std::int32_t lv = 0; lv < g.numLevels(); ++lv) {
    for (const netlist::PinId p : g.pinsAtLevel(lv)) {
      EXPECT_TRUE(seen.insert(p).second) << "pin " << p << " duplicated";
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), d.netlist.numPins());
}

TEST(PinGraph, EdgesPointBackwardOnly) {
  const PinGraph& g = *arm9().graph;
  for (std::int32_t lv = 0; lv < g.numLevels(); ++lv) {
    for (const auto& [srcLevel, srcRow] : g.netEdgesInto(lv).src) {
      EXPECT_LT(srcLevel, lv);
      EXPECT_LT(srcRow, static_cast<std::int64_t>(
                            g.pinsAtLevel(srcLevel).size()));
    }
    for (const auto& [srcLevel, srcRow] : g.cellEdgesInto(lv).src) {
      EXPECT_LT(srcLevel, lv);
    }
  }
}

TEST(PinGraph, EdgeCountsMatchNetlistStats) {
  const auto& d = arm9();
  const auto stats = d.netlist.stats();
  EXPECT_EQ(d.graph->totalNetEdges(), stats.numNetEdges);
  EXPECT_EQ(d.graph->totalCellEdges(), stats.numCellEdges);
}

TEST(PinGraph, LocateRoundTrips) {
  const auto& d = arm9();
  const PinGraph& g = *d.graph;
  for (netlist::PinId p = 0; p < d.netlist.numPins(); p += 7) {
    const auto [lv, row] = g.locate(p);
    EXPECT_EQ(g.pinsAtLevel(lv)[static_cast<std::size_t>(row)], p);
  }
}

TEST(FeatureBuilder, RowsAreOneHotAndFinite) {
  const auto& d = arm9();
  const auto& t = d.pinFeatures;
  const std::int64_t dim = t.dim(1);
  const std::int64_t vocabSize = pipeline().vocabulary().size();
  ASSERT_EQ(dim, FeatureBuilder::kNumericFeatures + vocabSize);
  for (std::int64_t r = 0; r < t.dim(0); ++r) {
    float onehotSum = 0.0f;
    float kindSum = 0.0f;
    for (std::int64_t c = 0; c < dim; ++c) {
      const float v = t.at(r, c);
      EXPECT_TRUE(std::isfinite(v));
      if (c >= FeatureBuilder::kNumericFeatures) onehotSum += v;
      if (c >= 3 && c <= 6) kindSum += v;
    }
    EXPECT_FLOAT_EQ(onehotSum, 1.0f) << "row " << r;
    EXPECT_FLOAT_EQ(kindSum, 1.0f) << "row " << r;
  }
}

TEST(FeatureBuilder, NodesUseDisjointVocabularySlots) {
  // The same design area mapped to different nodes must activate different
  // one-hot slots — this is the node-dependent signal of the paper.
  const auto& d7 = arm9();
  const auto& d130 = jpeg();
  const std::int64_t base = FeatureBuilder::kNumericFeatures;
  const std::int64_t lib130Cells =
      pipeline().library(netlist::TechNode::k130nm).numCells();
  auto activeSlots = [&](const DesignData& d) {
    std::set<std::int64_t> slots;
    for (std::int64_t r = 0; r < d.pinFeatures.dim(0); ++r) {
      for (std::int64_t c = base; c < d.pinFeatures.dim(1); ++c) {
        if (d.pinFeatures.at(r, c) > 0.5f) slots.insert(c - base);
      }
    }
    return slots;
  };
  const std::int64_t portBase =
      pipeline().vocabulary().primaryInputIndex();
  for (const std::int64_t s : activeSlots(d130)) {
    if (s >= portBase) continue;  // port pseudo-gates are shared
    EXPECT_LT(s, lib130Cells);
  }
  for (const std::int64_t s : activeSlots(d7)) {
    if (s >= portBase) continue;
    EXPECT_GE(s, lib130Cells);
  }
}

TEST(PathExtractor, ConesContainEndpointAndReachStartpoints) {
  const auto& d = arm9();
  const auto endpoints = d.netlist.endpoints();
  ASSERT_EQ(d.paths().size(), endpoints.size());
  for (std::size_t i = 0; i < d.paths().size(); ++i) {
    const auto& path = d.paths()[i];
    EXPECT_EQ(path.endpoint, endpoints[i]);
    EXPECT_TRUE(std::binary_search(path.conePins.begin(),
                                   path.conePins.end(), path.endpoint));
    // Every cone pin's fanin must stay inside the cone (cone = closure).
    for (const netlist::PinId p : path.conePins) {
      for (const netlist::PinId f : d.netlist.timingFanin(p)) {
        EXPECT_TRUE(std::binary_search(path.conePins.begin(),
                                       path.conePins.end(), f))
            << "fanin " << f << " of " << p << " escapes the cone";
      }
    }
  }
}

TEST(PathExtractor, MaskedImageZeroOutsideFootprint) {
  const auto& d = arm9();
  const auto& path = d.paths().front();
  const auto masked = PathExtractor::maskedImage(*d.maps, path);
  const std::int32_t res = d.maps->resolution();
  ASSERT_EQ(masked.size(),
            static_cast<std::size_t>(3 * res * res));
  // Build the dilated footprint and check complement is zero.
  std::set<std::int32_t> inMask;
  for (const std::int32_t bin : path.maskBins) {
    const std::int32_t gx = bin % res;
    const std::int32_t gy = bin / res;
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      for (std::int32_t dx = -1; dx <= 1; ++dx) {
        if (gx + dx >= 0 && gx + dx < res && gy + dy >= 0 && gy + dy < res) {
          inMask.insert((gy + dy) * res + gx + dx);
        }
      }
    }
  }
  for (std::int32_t c = 0; c < 3; ++c) {
    for (std::int32_t bin = 0; bin < res * res; ++bin) {
      if (!inMask.count(bin)) {
        EXPECT_EQ(masked[static_cast<std::size_t>(c * res * res + bin)],
                  0.0f);
      }
    }
  }
}

TEST(DesignData, LabelsAlignWithEndpointsAndAreHarderThanElmore) {
  const auto& d = jpeg();
  ASSERT_EQ(d.labels.size(), d.paths().size());
  ASSERT_EQ(d.preRouteArrivals.size(), d.labels.size());
  // Sign-off (optimized but routed) arrival differs from the optimistic
  // pre-routing estimate — the gap the predictor learns.
  double signoffSum = 0.0, preSum = 0.0;
  for (std::size_t i = 0; i < d.labels.size(); ++i) {
    EXPECT_GT(d.labels[i], 0.0f);
    signoffSum += d.labels[i];
    preSum += d.preRouteArrivals[i];
  }
  EXPECT_NE(signoffSum, preSum);
}

TEST(DesignData, OptimizerActuallyRestructured) {
  const auto& d = jpeg();
  EXPECT_GT(d.optimizerReport.cellsResized, 0);
  EXPECT_LE(d.optimizerReport.worstArrivalAfter,
            d.optimizerReport.worstArrivalBefore);
}

TEST(DataPipeline, NodeGapVisibleInLabels) {
  // 130nm arrivals must sit roughly an order of magnitude above 7nm.
  const auto& d7 = arm9();
  const auto& d130 = jpeg();
  auto mean = [](const std::vector<float>& v) {
    double s = 0.0;
    for (const float x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(d130.labels) / mean(d7.labels), 4.0);
}

TEST(DataPipeline, UnknownDesignThrows) {
  EXPECT_THROW(pipeline().build("nope"), CheckError);
}

TEST(DataPipeline, UnconfiguredNodeThrows) {
  // The default pipeline covers 130nm + 7nm only.
  EXPECT_THROW(pipeline().library(netlist::TechNode::k45nm), CheckError);
}

TEST(DataPipeline, ThreeNodePipelineBuildsCustomDesigns) {
  DataConfig config;
  config.designScale = 0.15f;
  config.nodes = {netlist::TechNode::k130nm, netlist::TechNode::k7nm,
                  netlist::TechNode::k45nm};
  const DataPipeline multi(config);
  // Feature width grows by the 45nm cells.
  EXPECT_GT(multi.featureDim(), pipeline().featureDim());

  designgen::DesignEntry entry = multi.suite().entry("spiMaster");
  entry.node = netlist::TechNode::k45nm;
  entry.spec.name = "spiMaster_45";
  const DesignData d45 = multi.buildCustom(entry);
  EXPECT_EQ(d45.node, netlist::TechNode::k45nm);
  EXPECT_GT(d45.numEndpoints(), 0);
  // 45nm arrivals sit between the other nodes' scales.
  const DesignData d130 = multi.build("spiMaster");
  auto mean = [](const std::vector<float>& v) {
    double s = 0.0;
    for (const float x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  EXPECT_LT(mean(d45.labels), mean(d130.labels));
}

}  // namespace
}  // namespace dagt::features
