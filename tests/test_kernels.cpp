// Kernel parity suite: proves the dispatch tiers honor the rounding
// contract documented in src/tensor/kernels/kernels.hpp.
//
//   * Elementwise / accumulate / reduction kernels: bitwise identical
//     outputs in every supported tier (memcmp, including -0.0 and NaN).
//   * GEMM: scalar vs avx2 bitwise; avx2fma under a tight relative
//     tolerance (same accumulation order, fused rounding).
//   * Autograd correctness per tier (finite-difference gradcheck with the
//     tier pinned).
//   * Thread-count invariance: op results are bitwise identical whether
//     parallelFor runs 1 or 4 workers, in every tier.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace dagt::tensor::kernels {
namespace {

std::vector<Tier> supportedTiers() {
  std::vector<Tier> tiers;
  for (int t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    if (tierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// Pin the active tier for one test body; resetTier() on scope exit.
class TierGuard {
 public:
  explicit TierGuard(Tier tier) { forceTier(tier); }
  ~TierGuard() { resetTier(); }
};

/// Force a real worker count (the test box may report one core).
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t n) : saved_(parallelThreadCount()) {
    parallelThreadCount() = n;
  }
  ~ThreadCountGuard() { parallelThreadCount() = saved_; }

 private:
  std::size_t saved_;
};

std::vector<float> randomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

bool bitwiseEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// Odd sizes on purpose: exercise the 8-lane blocks AND the scalar tails.
const std::size_t kVecSizes[] = {1, 2, 7, 8, 9, 16, 31, 64, 67, 257};

TEST(KernelDispatch, TierNamesRoundTrip) {
  EXPECT_STREQ(tierName(Tier::kScalar), "scalar");
  EXPECT_STREQ(tierName(Tier::kAvx2), "avx2");
  EXPECT_STREQ(tierName(Tier::kAvx2Fma), "avx2fma");
  for (int t = 0; t < kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    const auto parsed = parseTier(tierName(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_FALSE(parseTier("sse9").has_value());
  EXPECT_FALSE(parseTier("").has_value());
  // "auto" is a dispatcher keyword, not a tier.
  EXPECT_FALSE(parseTier("auto").has_value());
}

TEST(KernelDispatch, ScalarAlwaysSupportedAndActiveTierIs) {
  EXPECT_TRUE(tierSupported(Tier::kScalar));
  EXPECT_TRUE(tierSupported(activeTier()));
  EXPECT_TRUE(tierSupported(detectTier()));
}

TEST(KernelDispatch, ForceTierPinsActiveTier) {
  for (const Tier tier : supportedTiers()) {
    TierGuard guard(tier);
    EXPECT_EQ(activeTier(), tier);
    EXPECT_EQ(&active(), &table(tier));
  }
}

TEST(KernelParity, ElementwiseBitwiseAcrossTiers) {
  const KernelTable& ref = table(Tier::kScalar);
  Rng rng(7);
  for (const std::size_t n : kVecSizes) {
    std::vector<float> x = randomVec(n, rng);
    std::vector<float> y = randomVec(n, rng);
    // Edge bits the contract must preserve: signed zero, NaN, infinity.
    x[0] = -0.0f;
    if (n > 2) {
      x[1] = std::numeric_limits<float>::quiet_NaN();
      y[2] = std::numeric_limits<float>::infinity();
    }
    const float s = 1.7f;
    for (const Tier tier : supportedTiers()) {
      if (tier == Tier::kScalar) continue;
      const KernelTable& kt = table(tier);
      const auto check2 = [&](auto refFn, auto tierFn, const char* name) {
        std::vector<float> a(n, 0.5f), b(n, 0.5f);
        refFn(ref, a.data());
        tierFn(kt, b.data());
        EXPECT_TRUE(bitwiseEqual(a, b))
            << name << " n=" << n << " tier=" << tierName(tier);
      };
      check2([&](const KernelTable& t, float* o) { t.addVec(x.data(), y.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.addVec(x.data(), y.data(), o, n); },
             "addVec");
      check2([&](const KernelTable& t, float* o) { t.subVec(x.data(), y.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.subVec(x.data(), y.data(), o, n); },
             "subVec");
      check2([&](const KernelTable& t, float* o) { t.mulVec(x.data(), y.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.mulVec(x.data(), y.data(), o, n); },
             "mulVec");
      check2([&](const KernelTable& t, float* o) { t.divVec(x.data(), y.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.divVec(x.data(), y.data(), o, n); },
             "divVec");
      check2([&](const KernelTable& t, float* o) { t.scaleVec(x.data(), s, o, n); },
             [&](const KernelTable& t, float* o) { t.scaleVec(x.data(), s, o, n); },
             "scaleVec");
      check2([&](const KernelTable& t, float* o) { t.addScalarVec(x.data(), s, o, n); },
             [&](const KernelTable& t, float* o) { t.addScalarVec(x.data(), s, o, n); },
             "addScalarVec");
      check2([&](const KernelTable& t, float* o) { t.reluVec(x.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.reluVec(x.data(), o, n); },
             "reluVec");
      check2([&](const KernelTable& t, float* o) { t.accAddVec(x.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.accAddVec(x.data(), o, n); },
             "accAddVec");
      check2([&](const KernelTable& t, float* o) { t.accScaleVec(x.data(), s, o, n); },
             [&](const KernelTable& t, float* o) { t.accScaleVec(x.data(), s, o, n); },
             "accScaleVec");
      check2([&](const KernelTable& t, float* o) { t.accMulVec(x.data(), y.data(), o, n); },
             [&](const KernelTable& t, float* o) { t.accMulVec(x.data(), y.data(), o, n); },
             "accMulVec");
    }
  }
}

TEST(KernelParity, ReluMatchesScalarOnSignedZeroAndNan) {
  // relu(x) must equal the scalar `x > 0 ? x : 0` bit-for-bit: -0.0 -> -0.0
  // is WRONG (scalar yields +0.0? no: -0.0 > 0 is false, so result is 0.0f
  // literal = +0.0), NaN -> 0.0. A max_ps-based kernel fails both.
  const float in[3] = {-0.0f, std::numeric_limits<float>::quiet_NaN(), -1.0f};
  for (const Tier tier : supportedTiers()) {
    float out[3] = {9.0f, 9.0f, 9.0f};
    table(tier).reluVec(in, out, 3);
    const float positiveZero = 0.0f;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(std::memcmp(&out[i], &positiveZero, sizeof(float)), 0)
          << "tier=" << tierName(tier) << " i=" << i;
    }
  }
}

TEST(KernelParity, ReductionsBitwiseAcrossTiers) {
  const KernelTable& ref = table(Tier::kScalar);
  Rng rng(11);
  for (const std::size_t n : kVecSizes) {
    const std::vector<float> x = randomVec(n, rng);
    const std::vector<float> y = randomVec(n, rng);
    const double refSum = ref.sumVec(x.data(), n);
    const double refDot = ref.dotVec(x.data(), y.data(), n);
    for (const Tier tier : supportedTiers()) {
      const KernelTable& kt = table(tier);
      const double sum = kt.sumVec(x.data(), n);
      const double dot = kt.dotVec(x.data(), y.data(), n);
      EXPECT_EQ(std::memcmp(&sum, &refSum, sizeof(double)), 0)
          << "sumVec n=" << n << " tier=" << tierName(tier);
      EXPECT_EQ(std::memcmp(&dot, &refDot, sizeof(double)), 0)
          << "dotVec n=" << n << " tier=" << tierName(tier);
    }
  }
}

struct GemmShape {
  std::int64_t n, k, m;
};
// Cover the 4-row x 16-col FMA microkernel, its row tail, its column tail,
// and shapes smaller than one block.
const GemmShape kGemmShapes[] = {
    {1, 1, 1}, {3, 5, 7}, {4, 9, 16}, {13, 9, 21}, {33, 47, 29}, {8, 16, 64}};

TEST(KernelParity, GemmScalarVsAvx2Bitwise) {
  if (!tierSupported(Tier::kAvx2)) GTEST_SKIP() << "no avx2 on this host";
  Rng rng(13);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.n * s.k), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.k * s.m), rng);
    std::vector<float> cRef(static_cast<std::size_t>(s.n * s.m), 0.25f);
    std::vector<float> cGot = cRef;
    table(Tier::kScalar)
        .gemmRows(a.data(), b.data(), cRef.data(), 0, s.n, s.k, s.m);
    table(Tier::kAvx2)
        .gemmRows(a.data(), b.data(), cGot.data(), 0, s.n, s.k, s.m);
    EXPECT_TRUE(bitwiseEqual(cRef, cGot))
        << "gemmRows " << s.n << "x" << s.k << "x" << s.m;

    // A^T B: A is [k, n].
    std::vector<float> tRef(static_cast<std::size_t>(s.n * s.m), -0.5f);
    std::vector<float> tGot = tRef;
    const auto at = randomVec(static_cast<std::size_t>(s.k * s.n), rng);
    table(Tier::kScalar)
        .gemmTransARows(at.data(), b.data(), tRef.data(), 0, s.n, s.k, s.n,
                        s.m);
    table(Tier::kAvx2)
        .gemmTransARows(at.data(), b.data(), tGot.data(), 0, s.n, s.k, s.n,
                        s.m);
    EXPECT_TRUE(bitwiseEqual(tRef, tGot))
        << "gemmTransARows " << s.n << "x" << s.k << "x" << s.m;
  }
}

TEST(KernelParity, GemmTransBBitwiseEveryTier) {
  // A B^T is dot-product based — the contract promises bitwise identity
  // even in the FMA tier.
  Rng rng(17);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.n * s.m), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.k * s.m), rng);
    std::vector<float> cRef(static_cast<std::size_t>(s.n * s.k), 1.0f);
    table(Tier::kScalar)
        .gemmTransBRows(a.data(), b.data(), cRef.data(), 0, s.n, s.m, s.k);
    for (const Tier tier : supportedTiers()) {
      std::vector<float> cGot(static_cast<std::size_t>(s.n * s.k), 1.0f);
      table(tier).gemmTransBRows(a.data(), b.data(), cGot.data(), 0, s.n,
                                 s.m, s.k);
      EXPECT_TRUE(bitwiseEqual(cRef, cGot))
          << "gemmTransBRows " << s.n << "x" << s.m << "x" << s.k
          << " tier=" << tierName(tier);
    }
  }
}

TEST(KernelParity, GemmFmaMatchesScalarWithinUlps) {
  if (!tierSupported(Tier::kAvx2Fma)) GTEST_SKIP() << "no fma on this host";
  Rng rng(19);
  for (const GemmShape& s : kGemmShapes) {
    const auto a = randomVec(static_cast<std::size_t>(s.n * s.k), rng);
    const auto b = randomVec(static_cast<std::size_t>(s.k * s.m), rng);
    std::vector<float> cRef(static_cast<std::size_t>(s.n * s.m), 0.0f);
    std::vector<float> cGot = cRef;
    table(Tier::kScalar)
        .gemmRows(a.data(), b.data(), cRef.data(), 0, s.n, s.k, s.m);
    table(Tier::kAvx2Fma)
        .gemmRows(a.data(), b.data(), cGot.data(), 0, s.n, s.k, s.m);
    for (std::size_t i = 0; i < cRef.size(); ++i) {
      const float scale = std::max(1.0f, std::abs(cRef[i]));
      EXPECT_NEAR(cGot[i], cRef[i], 1e-5f * scale)
          << "gemmRows(fma) " << s.n << "x" << s.k << "x" << s.m << " @" << i;
    }
  }
}

TEST(KernelParity, MatmulOpBitwiseAcrossThreadCounts) {
  // parallelFor splits GEMM along C rows only, so the op result must not
  // depend on the worker count — in any tier.
  Rng rng(23);
  Tensor a = Tensor::randn({37, 19}, rng);
  Tensor b = Tensor::randn({19, 41}, rng);
  for (const Tier tier : supportedTiers()) {
    TierGuard tierGuard(tier);
    std::vector<float> single;
    {
      ThreadCountGuard threads(1);
      single = matmul(a, b).toVector();
    }
    for (const std::size_t workers : {2ul, 4ul}) {
      ThreadCountGuard threads(workers);
      const std::vector<float> multi = matmul(a, b).toVector();
      EXPECT_TRUE(bitwiseEqual(single, multi))
          << "tier=" << tierName(tier) << " workers=" << workers;
    }
  }
}

TEST(KernelParity, OpsBitwiseScalarVsAvx2EndToEnd) {
  if (!tierSupported(Tier::kAvx2)) GTEST_SKIP() << "no avx2 on this host";
  // Whole-graph check through the public ops: forward AND gradients.
  Rng rng(29);
  Tensor a = Tensor::randn({9, 17}, rng, 1.0f, /*requiresGrad=*/true);
  Tensor b = Tensor::randn({17, 13}, rng, 1.0f, /*requiresGrad=*/true);
  const auto run = [&](Tier tier) {
    TierGuard guard(tier);
    a.zeroGrad();
    b.zeroGrad();
    Tensor loss = sumAll(relu(matmul(a, b)));
    loss.backward();
    std::vector<float> out = loss.grad().toVector();
    const auto ga = a.grad().toVector();
    const auto gb = b.grad().toVector();
    out.insert(out.end(), ga.begin(), ga.end());
    out.insert(out.end(), gb.begin(), gb.end());
    out.push_back(loss.item());
    return out;
  };
  const auto ref = run(Tier::kScalar);
  const auto got = run(Tier::kAvx2);
  EXPECT_TRUE(bitwiseEqual(ref, got));
}

/// Finite-difference gradcheck (same scheme as test_tensor.cpp).
void gradCheck(Tensor& input, const std::function<Tensor()>& lossFn,
               float tol = 2e-2f, float eps = 1e-3f) {
  input.zeroGrad();
  Tensor loss = lossFn();
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();
  const Tensor analytic = input.grad();
  ASSERT_TRUE(analytic.defined());
  float* p = input.data();
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const float saved = p[i];
    p[i] = saved + eps;
    const float up = lossFn().item();
    p[i] = saved - eps;
    const float down = lossFn().item();
    p[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float got = analytic.data()[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(got)});
    EXPECT_NEAR(got, numeric, tol * scale)
        << "element " << i << " analytic=" << got << " numeric=" << numeric;
  }
}

TEST(KernelParity, GradCheckEveryTier) {
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    TierGuard guard(tier);
    Rng rng(31);
    Tensor a = Tensor::randn({5, 6}, rng, 0.8f, /*requiresGrad=*/true);
    Tensor b = Tensor::randn({6, 4}, rng, 0.8f, /*requiresGrad=*/true);
    Tensor c = Tensor::randn({5, 4}, rng, 0.8f, /*requiresGrad=*/true);
    const auto lossFn = [&] {
      // matmul + elementwise + reduction in one graph, so gemmRows,
      // gemmTransARows, gemmTransBRows, mul/add/relu and the reductions
      // all participate in the backward pass.
      return sumAll(mul(relu(matmul(a, b)), c));
    };
    gradCheck(a, lossFn);
    gradCheck(b, lossFn);
    gradCheck(c, lossFn);
  }
}

TEST(KernelParity, Conv2dGradCheckEveryTier) {
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    TierGuard guard(tier);
    Rng rng(37);
    Tensor img = Tensor::randn({2, 2, 5, 5}, rng, 0.7f, /*requiresGrad=*/true);
    Tensor w = Tensor::randn({3, 2, 3, 3}, rng, 0.7f, /*requiresGrad=*/true);
    Tensor bias = Tensor::randn({3}, rng, 0.2f, /*requiresGrad=*/true);
    const auto lossFn = [&] {
      return sumAll(conv2d(img, w, bias, /*stride=*/1, /*padding=*/1));
    };
    gradCheck(img, lossFn, 3e-2f);
    gradCheck(w, lossFn, 3e-2f);
    gradCheck(bias, lossFn, 3e-2f);
  }
}

TEST(KernelParity, FusedEwRowsBitwiseAcrossTiers) {
  // One program per EwOp, run over a [rows, cols] block with a full-matrix,
  // a row-vector and a column-vector operand: every tier must match the
  // scalar reference bit for bit (the fused contract in kernels.hpp).
  const std::int64_t rows = 7, cols = 19;
  Rng rng(41);
  const std::vector<float> seed =
      randomVec(static_cast<std::size_t>(rows * cols), rng);
  const std::vector<float> full =
      randomVec(static_cast<std::size_t>(rows * cols), rng);
  const std::vector<float> rowv = randomVec(static_cast<std::size_t>(cols), rng);
  const std::vector<float> colv = randomVec(static_cast<std::size_t>(rows), rng);

  const float* operands[4] = {seed.data(), full.data(), rowv.data(),
                              colv.data()};
  const std::uint8_t kinds[4] = {
      static_cast<std::uint8_t>(EwOperandKind::kFull),
      static_cast<std::uint8_t>(EwOperandKind::kFull),
      static_cast<std::uint8_t>(EwOperandKind::kRowVec),
      static_cast<std::uint8_t>(EwOperandKind::kColVec)};

  const EwOp allOps[] = {EwOp::kAddV,   EwOp::kSubV,      EwOp::kRsubV,
                         EwOp::kMulV,   EwOp::kDivV,      EwOp::kRdivV,
                         EwOp::kAddS,   EwOp::kMulS,      EwOp::kRelu,
                         EwOp::kLeakyRelu, EwOp::kTanh,   EwOp::kSigmoid,
                         EwOp::kExp,    EwOp::kLog,       EwOp::kSqrt,
                         EwOp::kSquare, EwOp::kSoftplus,  EwOp::kPowInt};
  for (const EwOp op : allOps) {
    SCOPED_TRACE(static_cast<int>(op));
    // Each program: the op under test against every operand kind it
    // accepts, bracketed by a scale so the accumulator is never trivial.
    std::vector<EwStep> steps;
    steps.push_back({EwOp::kMulS, -1, 0.75f, 0});
    const bool binary = op == EwOp::kAddV || op == EwOp::kSubV ||
                        op == EwOp::kRsubV || op == EwOp::kMulV ||
                        op == EwOp::kDivV || op == EwOp::kRdivV;
    if (binary) {
      for (std::int32_t operand = 1; operand <= 3; ++operand) {
        steps.push_back({op, operand, 0.0f, 0});
      }
    } else {
      EwStep s{op, -1, 0.0f, 0};
      if (op == EwOp::kAddS || op == EwOp::kMulS) s.scalar = 1.25f;
      if (op == EwOp::kLeakyRelu) s.scalar = 0.1f;
      if (op == EwOp::kLog || op == EwOp::kSqrt) s.scalar = 1e-6f;
      if (op == EwOp::kPowInt) s.ipow = 3;
      steps.push_back(s);
    }

    std::vector<float> ref(static_cast<std::size_t>(rows * cols));
    table(Tier::kScalar)
        .fusedEwRows(operands, kinds, 4, steps.data(),
                     static_cast<int>(steps.size()), ref.data(), rows, cols);
    for (const Tier tier : supportedTiers()) {
      SCOPED_TRACE(tierName(tier));
      std::vector<float> out(ref.size(), -1.0f);
      table(tier).fusedEwRows(operands, kinds, 4, steps.data(),
                              static_cast<int>(steps.size()), out.data(),
                              rows, cols);
      EXPECT_TRUE(bitwiseEqual(ref, out));
    }
  }
}

TEST(KernelParity, FusedGemmEpilogueMatchesGemmPlusScalarEpilogue) {
  // Contract: the GEMM part of fusedGemmEpilogueRows rounds exactly like
  // the tier's own gemmRows, and the epilogue (bias -> activation ->
  // residual) is bitwise identical across tiers. So for every tier,
  // fused == gemmRows-of-that-tier + the scalar reference epilogue, bit
  // for bit — including the AVX2 single-pass epilogue.
  const std::int64_t n = 13, k = 27, m = 22;
  Rng rng(43);
  const std::vector<float> a = randomVec(static_cast<std::size_t>(n * k), rng);
  const std::vector<float> b = randomVec(static_cast<std::size_t>(k * m), rng);
  const std::vector<float> bias = randomVec(static_cast<std::size_t>(m), rng);
  const std::vector<float> residual =
      randomVec(static_cast<std::size_t>(n * m), rng);

  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    const KernelTable& kt = table(tier);
    for (std::int32_t activation = 0; activation <= 4; ++activation) {
      for (const bool withBias : {false, true}) {
        for (const bool withResidual : {false, true}) {
          SCOPED_TRACE("act=" + std::to_string(activation) +
                       " bias=" + std::to_string(withBias) +
                       " res=" + std::to_string(withResidual));
          GemmEpilogue ep;
          ep.bias = withBias ? bias.data() : nullptr;
          ep.residual = withResidual ? residual.data() : nullptr;
          ep.activation = activation;
          ep.slope = activation == 4 ? 0.15f : 0.0f;

          // Unfused reference: the tier's own GEMM, then the scalar
          // epilogue expressions (exactly the eager op chain).
          std::vector<float> ref(static_cast<std::size_t>(n * m), 0.0f);
          kt.gemmRows(a.data(), b.data(), ref.data(), 0, n, k, m);
          for (std::int64_t r = 0; r < n; ++r) {
            float* crow = ref.data() + r * m;
            if (ep.bias != nullptr) {
              for (std::int64_t j = 0; j < m; ++j) crow[j] += ep.bias[j];
            }
            for (std::int64_t j = 0; j < m; ++j) {
              switch (activation) {
                case 1: crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f; break;
                case 2: crow[j] = std::tanh(crow[j]); break;
                case 3: crow[j] = 1.0f / (1.0f + std::exp(-crow[j])); break;
                case 4:
                  crow[j] = crow[j] > 0.0f ? crow[j] : ep.slope * crow[j];
                  break;
                default: break;
              }
            }
            if (ep.residual != nullptr) {
              const float* rrow = ep.residual + r * m;
              for (std::int64_t j = 0; j < m; ++j) crow[j] += rrow[j];
            }
          }

          std::vector<float> fused(static_cast<std::size_t>(n * m), 0.0f);
          kt.fusedGemmEpilogueRows(a.data(), b.data(), /*packedB=*/nullptr,
                                   fused.data(), 0, n, k, m, &ep);
          EXPECT_TRUE(bitwiseEqual(ref, fused));

          // Prepacked-B path: same rounding as the plain-B path.
          const std::int64_t packSize = kt.gemmPackBSize(k, m);
          if (packSize > 0) {
            std::vector<float> panel(static_cast<std::size_t>(packSize));
            kt.gemmPackB(b.data(), k, m, panel.data());
            std::vector<float> packed(static_cast<std::size_t>(n * m), 0.0f);
            kt.fusedGemmEpilogueRows(a.data(), b.data(), panel.data(),
                                     packed.data(), 0, n, k, m, &ep);
            EXPECT_TRUE(bitwiseEqual(fused, packed));
          }
        }
      }
    }
  }
}

TEST(KernelParity, SegmentSumRowsBitwiseAcrossTiers) {
  const std::int64_t rows = 23, cols = 17, segments = 5;
  Rng rng(47);
  const std::vector<float> src =
      randomVec(static_cast<std::size_t>(rows * cols), rng);
  std::vector<std::int64_t> segment(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    segment[static_cast<std::size_t>(r)] =
        static_cast<std::int64_t>(rng.uniform(0.0, 1.0) * segments) % segments;
  }
  std::vector<float> ref(static_cast<std::size_t>(segments * cols), 0.0f);
  table(Tier::kScalar)
      .segmentSumRows(src.data(), segment.data(), rows, cols, ref.data());
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    std::vector<float> out(ref.size(), 0.0f);
    table(tier).segmentSumRows(src.data(), segment.data(), rows, cols,
                               out.data());
    EXPECT_TRUE(bitwiseEqual(ref, out));
  }
}

TEST(KernelParity, DotTopkRowsMatchesNaiveAndBitwiseAcrossTiers) {
  const std::int64_t dim = 19, payload = 2, numRows = 37;
  const std::int64_t rowStride = dim + payload;
  const std::int32_t k = 5;
  Rng rng(61);
  const std::vector<float> rows =
      randomVec(static_cast<std::size_t>(numRows * rowStride), rng);
  const std::vector<float> q = randomVec(static_cast<std::size_t>(dim), rng);

  // Naive reference: score every row with the scalar dot (the cross-tier
  // contract), stable-sort descending — ties keep the lower id.
  std::vector<std::pair<float, std::int64_t>> scored;
  for (std::int64_t r = 0; r < numRows; ++r) {
    const float s = static_cast<float>(table(Tier::kScalar).dotVec(
        q.data(), rows.data() + r * rowStride,
        static_cast<std::size_t>(dim)));
    scored.emplace_back(s, r);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });

  std::vector<float> refScores;
  std::vector<std::int64_t> refIds;
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    std::vector<float> topScores(
        static_cast<std::size_t>(k),
        -std::numeric_limits<float>::infinity());
    std::vector<std::int64_t> topIds(static_cast<std::size_t>(k), -1);
    // Feed the rows in two blocks with an idBase offset for the second:
    // the running top-k must carry across block calls.
    const std::int64_t split = 20;
    table(tier).dotTopkRows(q.data(), rows.data(), split, dim, rowStride, 0,
                            k, topScores.data(), topIds.data());
    table(tier).dotTopkRows(q.data(), rows.data() + split * rowStride,
                            numRows - split, dim, rowStride, split, k,
                            topScores.data(), topIds.data());
    for (std::int32_t i = 0; i < k; ++i) {
      EXPECT_EQ(topIds[static_cast<std::size_t>(i)],
                scored[static_cast<std::size_t>(i)].second)
          << "rank " << i;
    }
    if (tier == Tier::kScalar) {
      refScores = topScores;
      refIds = topIds;
    } else {
      EXPECT_TRUE(bitwiseEqual(refScores, topScores));
      EXPECT_EQ(refIds, topIds);
    }
  }
}

TEST(KernelParity, DotTopkRowsTiesKeepLowerIdAndRespectK) {
  // Identical rows: every score ties, so the top-k must be ids 0..k-1.
  const std::int64_t dim = 9, numRows = 7;
  const std::vector<float> q(static_cast<std::size_t>(dim), 0.5f);
  std::vector<float> rows(static_cast<std::size_t>(numRows * dim));
  for (std::int64_t r = 0; r < numRows; ++r) {
    for (std::int64_t c = 0; c < dim; ++c) {
      rows[static_cast<std::size_t>(r * dim + c)] = 1.0f;
    }
  }
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    const std::int32_t k = 3;
    std::vector<float> topScores(
        static_cast<std::size_t>(k),
        -std::numeric_limits<float>::infinity());
    std::vector<std::int64_t> topIds(static_cast<std::size_t>(k), -1);
    table(tier).dotTopkRows(q.data(), rows.data(), numRows, dim, dim, 0, k,
                            topScores.data(), topIds.data());
    EXPECT_EQ(topIds, (std::vector<std::int64_t>{0, 1, 2}));
  }
}

TEST(KernelParity, GatherRowsPtrsBitwiseAcrossTiers) {
  const std::int64_t rows = 29, cols = 13;
  Rng rng(53);
  const std::vector<float> pool =
      randomVec(static_cast<std::size_t>(rows * cols * 2), rng);
  std::vector<const float*> ptrs(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const auto offset =
        static_cast<std::size_t>(rng.uniform(0.0, 1.0) * (rows * 2 - 1));
    ptrs[static_cast<std::size_t>(r)] =
        pool.data() + offset * static_cast<std::size_t>(cols);
  }
  std::vector<float> ref(static_cast<std::size_t>(rows * cols), 0.0f);
  table(Tier::kScalar).gatherRowsPtrs(ptrs.data(), rows, cols, ref.data());
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(tierName(tier));
    std::vector<float> out(ref.size(), -7.0f);
    table(tier).gatherRowsPtrs(ptrs.data(), rows, cols, out.data());
    EXPECT_TRUE(bitwiseEqual(ref, out));
  }
}

}  // namespace
}  // namespace dagt::tensor::kernels
