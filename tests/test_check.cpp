// Runtime-contract checks (DAGT_CHECKS / DAGT_DCHECK*). The macros throw
// dagt::CheckError when DAGT_CHECKS is 1 and compile to nothing when 0; the
// firing tests are therefore gated on the level, and the level-consistency
// test passes in both configurations (the default build keeps checks on, a
// Release build compiles them out).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"

namespace dagt::tensor {
namespace {

TEST(DagtChecks, LevelConsistency) {
#if DAGT_CHECKS
  EXPECT_THROW(DAGT_DCHECK(false), CheckError);
  EXPECT_NO_THROW(DAGT_DCHECK(true));
#else
  // Compiled out: the condition is never evaluated, so even `false` is inert.
  EXPECT_NO_THROW(DAGT_DCHECK(false));
  int evaluations = 0;
  DAGT_DCHECK((++evaluations, false));
  EXPECT_EQ(evaluations, 0);
#endif
}

#if DAGT_CHECKS

TEST(DagtChecks, DcheckMsgCarriesStreamedMessage) {
  try {
    DAGT_DCHECK_MSG(false, "batch " << 3 << " is bad");
    FAIL() << "DAGT_DCHECK_MSG(false, ...) did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("batch 3 is bad"), std::string::npos)
        << e.what();
  }
}

// The serve batch assembler asserts the assembled image block's shape
// against the coalesced request count — this is the same macro firing on
// the canonical mismatched-feature-width case.
TEST(DagtChecks, ShapeMismatchRendersBothSides) {
  const std::vector<std::int64_t> assembled = {4, 3, 32, 32};
  const std::vector<std::int64_t> expected = {5, 3, 32, 32};
  EXPECT_NO_THROW(DAGT_DCHECK_SHAPE(assembled, assembled));
  try {
    DAGT_DCHECK_SHAPE(assembled, expected);
    FAIL() << "DAGT_DCHECK_SHAPE did not throw on mismatched widths";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("[4, 3, 32, 32]"), std::string::npos) << what;
    EXPECT_NE(what.find("[5, 3, 32, 32]"), std::string::npos) << what;
  }
}

TEST(DagtChecks, ShapeCheckWorksOnTensorShapes) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({3, 2});
  EXPECT_NO_THROW(DAGT_DCHECK_SHAPE(a.shape(), a.shape()));
  EXPECT_THROW(DAGT_DCHECK_SHAPE(a.shape(), b.shape()), CheckError);
}

TEST(DagtChecks, AlignmentContract) {
  alignas(8) float slab[4] = {0, 0, 0, 0};
  EXPECT_NO_THROW(DAGT_DCHECK_ALIGNED(&slab[0], alignof(float)));
  const char* bytes = reinterpret_cast<const char*>(&slab[0]);
  EXPECT_THROW(DAGT_DCHECK_ALIGNED(bytes + 1, alignof(float)), CheckError);
}

TEST(DagtChecks, ViewBeyondStorageBoundsThrows) {
  Storage s = Storage::allocate(16);
  EXPECT_NO_THROW(s.view(0, 16));
  EXPECT_NO_THROW(s.view(16, 0));
  EXPECT_THROW(s.view(10, 10), CheckError);   // 10 + 10 > 16
  EXPECT_THROW(s.view(17, 0), CheckError);    // offset past the end
}

TEST(DagtChecks, ViewOfViewBoundsAreRelative) {
  Storage s = Storage::allocate(32);
  Storage window = s.view(8, 16);
  EXPECT_NO_THROW(window.view(0, 16));
  EXPECT_THROW(window.view(8, 16), CheckError);  // escapes the window
}

TEST(DagtChecks, DoublePoolReleaseThrows) {
  auto& pool = BufferPool::global();
  pool.trim();  // empty the bucket so the released buffer is parked, not freed
  std::shared_ptr<Buffer> handle = pool.acquire(64);
  Buffer* raw = handle.get();
  EXPECT_NO_THROW(PoolContractTestPeer::checkRelease(pool, *raw));  // live
  handle.reset();  // single legitimate release: parks the buffer
  ASSERT_TRUE(raw->parked());
  EXPECT_THROW(PoolContractTestPeer::checkRelease(pool, *raw), CheckError);
}

TEST(DagtChecks, ForeignBufferReleaseThrows) {
  auto& pool = BufferPool::global();
  // Wrong capacity for its claimed bucket: never came from acquire().
  Buffer mismatched(100, 3);
  EXPECT_THROW(PoolContractTestPeer::checkRelease(pool, mismatched),
               CheckError);
  // Adopted buffers (bucket -1) must never reach the pool's release path.
  Buffer adopted(std::vector<float>(8, 0.0f));
  EXPECT_THROW(PoolContractTestPeer::checkRelease(pool, adopted), CheckError);
  // Bucket index past the table.
  Buffer outOfRange(64, static_cast<int>(BufferPool::kNumBuckets));
  EXPECT_THROW(PoolContractTestPeer::checkRelease(pool, outOfRange),
               CheckError);
}

TEST(DagtChecks, PooledAcquireReleaseCycleStaysClean) {
  auto& pool = BufferPool::global();
  for (int round = 0; round < 3; ++round) {
    auto a = pool.acquire(64);
    auto b = pool.acquire(4096);
    EXPECT_NO_THROW(PoolContractTestPeer::checkRelease(pool, *a));
    EXPECT_NO_THROW(PoolContractTestPeer::checkRelease(pool, *b));
  }
}

#endif  // DAGT_CHECKS

}  // namespace
}  // namespace dagt::tensor
