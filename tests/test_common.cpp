#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/check.hpp"
#include "common/geometry.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"

namespace dagt {
namespace {

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    DAGT_CHECK_MSG(1 == 2, "one is " << 1);
    FAIL() << "expected a CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is 1"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(DAGT_CHECK(true));
  EXPECT_NO_THROW(DAGT_CHECK_MSG(2 > 1, "unused"));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, UniformIsInRangeWithSaneMoments) {
  Rng rng(123);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sumSq += u * u;
  }
  const double mean = sum / kN;
  const double var = sumSq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sumSq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sumSq / kN, 1.0, 0.05);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.uniformInt(7ULL));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, SampleIndicesAreDistinctAndBounded) {
  Rng rng(11);
  const auto picks = rng.sampleIndices(100, 40);
  EXPECT_EQ(picks.size(), 40u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const auto p : picks) EXPECT_LT(p, 100u);
  EXPECT_THROW(rng.sampleIndices(5, 6), CheckError);
}

TEST(Rng, SplitDecorrelates) {
  Rng parent(42);
  Rng childA = parent.split();
  Rng childB = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (childA.next() == childB.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ---------------------------------------------------------------------------
// parallelFor
// ---------------------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallelFor(0, kN, [&](std::size_t i) { ++hits[i]; }, /*grainSize=*/64);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  std::atomic<int> count{0};
  parallelFor(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  parallelFor(0, 3, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallelFor(0, 4096,
                  [](std::size_t i) {
                    if (i == 1234) throw std::runtime_error("boom");
                  },
                  /*grainSize=*/16),
      std::runtime_error);
}

TEST(ParallelFor, MatchesSerialReduction) {
  constexpr std::size_t kN = 4096;
  std::vector<double> out(kN);
  parallelFor(0, kN, [&](std::size_t i) {
    out[i] = std::sqrt(static_cast<double>(i));
  });
  for (std::size_t i = 0; i < kN; i += 97) {
    EXPECT_DOUBLE_EQ(out[i], std::sqrt(static_cast<double>(i)));
  }
}

// ---------------------------------------------------------------------------
// Geometry
// ---------------------------------------------------------------------------

TEST(Geometry, ManhattanAndRect) {
  EXPECT_FLOAT_EQ(manhattan({0, 0}, {3, 4}), 7.0f);
  Rect r{{1, 1}, {1, 1}};
  r.expand({4, 2});
  r.expand({0, 5});
  EXPECT_FLOAT_EQ(r.width(), 4.0f);
  EXPECT_FLOAT_EQ(r.height(), 4.0f);
  EXPECT_FLOAT_EQ(r.halfPerimeter(), 8.0f);
  EXPECT_TRUE(r.contains({2, 2}));
  EXPECT_FALSE(r.contains({5, 2}));
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.addRow({"a", "1"});
  t.addSeparator();
  t.addRow({"longer-name", "2.50"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line has equal width.
  std::size_t lineLen = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, lineLen);
    pos = next + 1;
  }
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), CheckError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(-0.5), "-0.500");
}

}  // namespace
}  // namespace dagt
