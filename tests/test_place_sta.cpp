#include <gtest/gtest.h>

#include "designgen/design_suite.hpp"
#include "place/layout_maps.hpp"
#include "place/placer.hpp"
#include "sta/sta_engine.hpp"
#include "sta/timing_optimizer.hpp"

namespace dagt {
namespace {

using designgen::DesignSuite;
using netlist::CellLibrary;
using netlist::Netlist;
using netlist::PinId;
using netlist::TechNode;

/// Shared fixture: one placed mid-sized 7nm design.
struct PlacedDesign {
  CellLibrary lib;
  Netlist nl;
  place::PlacementResult placement;

  explicit PlacedDesign(const std::string& name = "arm9", float scale = 0.4f,
                        TechNode node = TechNode::k7nm)
      : lib(CellLibrary::makeNode(node)),
        nl([&] {
          const DesignSuite suite(scale);
          return suite.buildNetlist(suite.entry(name), lib);
        }()) {
    placement = place::Placer::place(nl);
  }
};

TEST(Placer, AllCellsInsideDieAndOutsideMacros) {
  PlacedDesign d("or1200", 0.3f);
  for (netlist::CellId c = 0; c < d.nl.numCells(); ++c) {
    const Point loc = d.nl.cell(c).location;
    EXPECT_TRUE(d.placement.dieArea.contains(loc));
    for (const Rect& m : d.placement.macros) {
      EXPECT_FALSE(m.contains(loc)) << "cell " << c << " inside macro";
    }
  }
}

TEST(Placer, CellsOccupyDistinctSites) {
  PlacedDesign d("arm9", 0.4f);
  std::set<std::pair<float, float>> seen;
  for (netlist::CellId c = 0; c < d.nl.numCells(); ++c) {
    const Point loc = d.nl.cell(c).location;
    EXPECT_TRUE(seen.insert({loc.x, loc.y}).second)
        << "overlapping cells at (" << loc.x << "," << loc.y << ")";
  }
}

TEST(Placer, AnnealingImprovesHpwl) {
  PlacedDesign d("or1200", 0.3f);
  EXPECT_LT(d.placement.finalHpwl, d.placement.initialHpwl);
  EXPECT_GT(d.placement.finalHpwl, 0.0f);
}

TEST(Placer, PortsSitOnDieBoundary) {
  PlacedDesign d;
  for (const PinId pi : d.nl.primaryInputs()) {
    EXPECT_FLOAT_EQ(d.nl.pinLocation(pi).x, d.placement.dieArea.lo.x);
  }
  for (const PinId po : d.nl.primaryOutputs()) {
    EXPECT_FLOAT_EQ(d.nl.pinLocation(po).x, d.placement.dieArea.hi.x);
  }
}

TEST(LayoutMaps, ChannelsAreBoundedAndNonTrivial) {
  PlacedDesign d("or1200", 0.3f);
  const place::LayoutMaps maps(d.nl, d.placement, 32);
  const auto& img = maps.image();
  ASSERT_EQ(img.size(), 3u * 32 * 32);
  float densitySum = 0.0f, rudySum = 0.0f, macroSum = 0.0f;
  for (std::int32_t gy = 0; gy < 32; ++gy) {
    for (std::int32_t gx = 0; gx < 32; ++gx) {
      EXPECT_GE(maps.cellDensityAt(gx, gy), 0.0f);
      EXPECT_LE(maps.cellDensityAt(gx, gy), 1.0f);
      EXPECT_GE(maps.rudyAt(gx, gy), 0.0f);
      EXPECT_LE(maps.rudyAt(gx, gy), 1.5f);
      densitySum += maps.cellDensityAt(gx, gy);
      rudySum += maps.rudyAt(gx, gy);
      macroSum += maps.macroAt(gx, gy);
    }
  }
  EXPECT_GT(densitySum, 0.0f);
  EXPECT_GT(rudySum, 0.0f);
  EXPECT_GT(macroSum, 0.0f);  // macros exist for designs this size
}

TEST(LayoutMaps, MacroChannelMatchesMacroRects) {
  PlacedDesign d("or1200", 0.3f);
  const place::LayoutMaps maps(d.nl, d.placement, 32);
  ASSERT_FALSE(d.placement.macros.empty());
  const Rect& m = d.placement.macros.front();
  const Point center{(m.lo.x + m.hi.x) / 2, (m.lo.y + m.hi.y) / 2};
  const auto [gx, gy] = maps.binOf(center);
  EXPECT_FLOAT_EQ(maps.macroAt(gx, gy), 1.0f);
}

TEST(Sta, ArrivalIsMonotoneAlongTimingEdges) {
  PlacedDesign d;
  const auto timing =
      sta::StaEngine::run(d.nl, nullptr, sta::RouteConfig{});
  for (PinId p = 0; p < d.nl.numPins(); ++p) {
    for (const PinId f : d.nl.timingFanin(p)) {
      EXPECT_GE(timing.arrival[static_cast<std::size_t>(p)],
                timing.arrival[static_cast<std::size_t>(f)])
          << "pin " << p << " earlier than its fanin " << f;
    }
  }
}

TEST(Sta, EndpointArrivalsArePositiveAndWorstMatches) {
  PlacedDesign d;
  const auto timing = sta::StaEngine::run(d.nl, nullptr, sta::RouteConfig{});
  const auto arrivals = timing.endpointArrivals(d.nl);
  ASSERT_EQ(arrivals.size(), d.nl.endpoints().size());
  float worst = 0.0f;
  for (const float a : arrivals) {
    EXPECT_GT(a, 0.0f);
    worst = std::max(worst, a);
  }
  EXPECT_FLOAT_EQ(worst, timing.worstArrival);
}

TEST(Sta, RoutedModelIsSlowerThanPreRouting) {
  PlacedDesign d;
  const place::LayoutMaps maps(d.nl, d.placement, 32);
  const auto pre = sta::StaEngine::run(d.nl, nullptr, sta::RouteConfig{});
  const auto routed = sta::StaEngine::run(
      d.nl, &maps,
      sta::RouteConfig{sta::WireModel::kRouted, 0.6f, 0.12f});
  EXPECT_GT(routed.worstArrival, pre.worstArrival);
}

TEST(Sta, NodeScaleGapShowsInArrivalTimes) {
  // Same functionality scale on both nodes: 130nm arrivals must sit about
  // an order of magnitude above 7nm (paper Figure 6).
  PlacedDesign seven("arm9", 0.3f, TechNode::k7nm);
  PlacedDesign mature("linkruncca", 0.3f, TechNode::k130nm);
  const auto t7 = sta::StaEngine::run(seven.nl, nullptr, sta::RouteConfig{});
  const auto t130 =
      sta::StaEngine::run(mature.nl, nullptr, sta::RouteConfig{});
  EXPECT_GT(t130.worstArrival / t7.worstArrival, 4.0f);
}

TEST(Sta, DriverLoadIncludesSinkPinCaps) {
  PlacedDesign d;
  const auto timing = sta::StaEngine::run(d.nl, nullptr, sta::RouteConfig{});
  for (netlist::NetId n = 0; n < d.nl.numNets(); ++n) {
    const auto& net = d.nl.net(n);
    float minLoad = 0.0f;
    for (const PinId sink : net.sinks) {
      const auto& sp = d.nl.pin(sink);
      if (sp.kind == netlist::PinKind::kCellInput) {
        minLoad += d.nl.cellTypeOf(sp.cell).inputCap;
      }
    }
    EXPECT_GE(timing.loadCap[static_cast<std::size_t>(net.driver)],
              minLoad - 1e-4f);
  }
}

TEST(TimingOptimizer, ImprovesWorstArrivalAndRestructures) {
  PlacedDesign d("or1200", 0.4f);
  const place::LayoutMaps maps(d.nl, d.placement, 32);
  const auto before = d.nl.stats();
  const auto report = sta::TimingOptimizer::optimize(d.nl, maps);
  EXPECT_LE(report.worstArrivalAfter, report.worstArrivalBefore);
  EXPECT_GT(report.cellsResized, 0);
  const auto after = d.nl.stats();
  if (report.buffersInserted > 0) {
    EXPECT_GT(after.numPins, before.numPins);
  }
  EXPECT_NO_THROW(d.nl.validate());
}

TEST(TimingOptimizer, PreservesEndpoints) {
  PlacedDesign d("or1200", 0.4f);
  const place::LayoutMaps maps(d.nl, d.placement, 32);
  const auto endpointsBefore = d.nl.endpoints();
  (void)sta::TimingOptimizer::optimize(d.nl, maps);
  const auto endpointsAfter = d.nl.endpoints();
  EXPECT_EQ(endpointsBefore, endpointsAfter);
}

}  // namespace
}  // namespace dagt
