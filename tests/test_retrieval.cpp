// Learned-prediction-cache suite. Built into its own binary
// (dagt_retrieval_tests, label "retrieval") so it can be compiled alone
// under ThreadSanitizer, like the concurrency and fleet suites:
//
//   cmake -B build-tsan -S . -DDAGT_SANITIZE=thread
//   cmake --build build-tsan --target dagt_retrieval_tests
//   ./build-tsan/tests/dagt_retrieval_tests
//
// Covers the EmbeddingIndex (exact top-k vs a naive scan, bucket growth,
// payload stability, empty-index probes, insert-during-query races), the
// PredictionCache admission gates (distance and sigma, including sigma
// EXACTLY at the threshold — the gate is <=), the per-snapshot embedding
// memo, and the engine integration: cache-off bitwise parity against a
// plain engine on or1200 AND arm9, hit/metrics behavior, and cache sharing
// across engines (the fleet-replica arrangement). Prediction quality is
// irrelevant, so the bundle wraps an untrained Bayesian-head "ours" model.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/rng.hpp"
#include "features/design_data.hpp"
#include "retrieval/embedding_index.hpp"
#include "retrieval/prediction_cache.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_engine.hpp"

namespace dagt::retrieval {
namespace {

// -- EmbeddingIndex ----------------------------------------------------------

std::vector<float> randomVec(Rng& rng, std::int64_t dim) {
  std::vector<float> v(static_cast<std::size_t>(dim));
  for (auto& x : v) x = static_cast<float>(rng.normal() * 2.0);
  return v;
}

/// Reference nearest-neighbor scan over raw (unnormalized) vectors.
std::vector<std::int64_t> naiveTopK(const std::vector<std::vector<float>>& db,
                                    const std::vector<float>& q,
                                    std::int32_t k) {
  const auto cosineDist = [](const std::vector<float>& a,
                             const std::vector<float>& b) {
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      nb += static_cast<double>(b[i]) * b[i];
    }
    return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
  };
  std::vector<std::int64_t> ids(db.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<std::int64_t>(i);
  }
  std::stable_sort(ids.begin(), ids.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return cosineDist(db[static_cast<std::size_t>(a)], q) <
                            cosineDist(db[static_cast<std::size_t>(b)], q);
                   });
  ids.resize(static_cast<std::size_t>(k));
  return ids;
}

TEST(EmbeddingIndex, EmptyIndexReturnsNoNeighbors) {
  EmbeddingIndex index(8, 0);
  const std::vector<float> q(8, 1.0f);
  EXPECT_TRUE(index.query(q.data(), 3).empty());
  EXPECT_EQ(index.size(), 0);
}

TEST(EmbeddingIndex, TopKMatchesNaiveScanAcrossBucketBoundaries) {
  const std::int64_t dim = 19;  // odd: exercises the dot's tail loop
  // bucketRows = 7 forces the 60 rows across 9 buckets.
  EmbeddingIndex index(dim, 0, EmbeddingIndex::Metric::kCosine, 7);
  Rng rng(1234);
  std::vector<std::vector<float>> db;
  for (int i = 0; i < 60; ++i) {
    db.push_back(randomVec(rng, dim));
    EXPECT_EQ(index.insert(db.back().data(), nullptr),
              static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(index.size(), 60);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<float> q = randomVec(rng, dim);
    const auto got = index.query(q.data(), 5);
    const auto want = naiveTopK(db, q, 5);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i]) << "trial " << trial << " rank " << i;
    }
    // Distances come back nearest-first and within the cosine range.
    for (std::size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].distance, got[i].distance);
    }
    for (const auto& n : got) {
      EXPECT_GE(n.distance, -1e-5f);
      EXPECT_LE(n.distance, 2.0f + 1e-5f);
    }
  }
}

TEST(EmbeddingIndex, ExactDuplicateHasZeroDistanceAndPayloadSurvives) {
  EmbeddingIndex index(6, 2);
  Rng rng(7);
  const std::vector<float> v = randomVec(rng, 6);
  const float payload[2] = {42.5f, 0.125f};
  index.insert(v.data(), payload);
  // A second row keeps the first row's payload pointer stable.
  const std::vector<float> other = randomVec(rng, 6);
  index.insert(other.data(), payload);
  const auto got = index.query(v.data(), 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 0);
  EXPECT_NEAR(got[0].distance, 0.0f, 1e-6f);
  ASSERT_NE(got[0].payload, nullptr);
  EXPECT_EQ(got[0].payload[0], 42.5f);
  EXPECT_EQ(got[0].payload[1], 0.125f);
}

TEST(EmbeddingIndex, FewerRowsThanKReturnsAllRows) {
  EmbeddingIndex index(4, 0);
  const std::vector<float> a = {1.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<float> b = {0.0f, 1.0f, 0.0f, 0.0f};
  index.insert(a.data(), nullptr);
  index.insert(b.data(), nullptr);
  const auto got = index.query(a.data(), 5);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 0);
  EXPECT_EQ(got[1].id, 1);
}

TEST(EmbeddingIndex, L2MetricRanksLikeCosineOnUnitVectors) {
  const std::int64_t dim = 12;
  EmbeddingIndex cos(dim, 0, EmbeddingIndex::Metric::kCosine);
  EmbeddingIndex l2(dim, 0, EmbeddingIndex::Metric::kL2);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const auto v = randomVec(rng, dim);
    cos.insert(v.data(), nullptr);
    l2.insert(v.data(), nullptr);
  }
  const auto q = randomVec(rng, dim);
  const auto a = cos.query(q.data(), 4);
  const auto b = l2.query(q.data(), 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);  // both monotone in the dot
    // l2 = sqrt(2 * cosine) for unit vectors.
    EXPECT_NEAR(b[i].distance,
                std::sqrt(std::max(0.0f, 2.0f * a[i].distance)), 1e-3f);
  }
}

// Readers race writers: queries must only ever see fully published rows
// (TSan-clean, valid ids, distances in range). Run under the TSan build of
// this target via tools/verify.sh's `retrieval` stage.
TEST(EmbeddingIndex, ConcurrentInsertDuringQueryIsSafe) {
  const std::int64_t dim = 16;
  EmbeddingIndex index(dim, 2, EmbeddingIndex::Metric::kCosine,
                       /*bucketRows=*/8);  // small buckets: many links
  std::atomic<bool> stop{false};
  const int kWriters = 2;
  const int kReaders = 3;
  const int kRowsPerWriter = 400;

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      for (int i = 0; i < kRowsPerWriter; ++i) {
        const auto v = randomVec(rng, dim);
        const float payload[2] = {static_cast<float>(i),
                                  static_cast<float>(w)};
        index.insert(v.data(), payload);
      }
    });
  }
  std::vector<std::thread> readers;
  std::atomic<std::int64_t> queries{0};
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(2000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto q = randomVec(rng, dim);
        const std::int64_t sizeBefore = index.size();
        const auto got = index.query(q.data(), 4);
        // An epoch query returns only rows committed at entry, so at
        // most min(sizeBefore-at-entry..., 4); ids must be valid rows.
        for (const auto& n : got) {
          EXPECT_GE(n.id, 0);
          EXPECT_LT(n.id, index.size());
          EXPECT_GE(n.distance, -1e-5f);
          ASSERT_NE(n.payload, nullptr);
          EXPECT_GE(n.payload[0], 0.0f);  // published payload, not zeros mid-copy
        }
        if (sizeBefore > 0) EXPECT_FALSE(got.empty());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(index.size(), kWriters * kRowsPerWriter);
  EXPECT_GT(queries.load(), 0);
}

// -- PredictionCache admission gates ----------------------------------------

CacheConfig gateConfig(float maxDist, float maxSigmaPs) {
  CacheConfig config;
  config.enabled = true;
  config.maxDist = maxDist;
  config.maxSigmaPs = maxSigmaPs;
  return config;
}

TEST(PredictionCache, EmptyIndexProbeIsMiss) {
  PredictionCache cache(8, gateConfig(0.5f, 10.0f));
  const std::vector<float> v(8, 1.0f);
  const auto r = cache.probe(v.data());
  EXPECT_EQ(r.outcome, PredictionCache::ProbeOutcome::kMiss);
  const auto c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 0u);
}

TEST(PredictionCache, SigmaExactlyAtThresholdAdmits) {
  PredictionCache cache(8, gateConfig(0.5f, 10.0f));
  Rng rng(5);
  const auto v = randomVec(rng, 8);
  cache.insert(v.data(), {3.25f, 10.0f});  // sigma == maxSigmaPs exactly
  const auto r = cache.probe(v.data());
  EXPECT_EQ(r.outcome, PredictionCache::ProbeOutcome::kHit);
  EXPECT_EQ(r.posterior.rawMeanNs, 3.25f);
  EXPECT_EQ(r.posterior.sigmaPs, 10.0f);
}

TEST(PredictionCache, SigmaAboveThresholdRejects) {
  PredictionCache cache(8, gateConfig(0.5f, 10.0f));
  Rng rng(6);
  const auto v = randomVec(rng, 8);
  cache.insert(v.data(), {3.25f, 10.0001f});
  const auto r = cache.probe(v.data());
  EXPECT_EQ(r.outcome, PredictionCache::ProbeOutcome::kRejectSigma);
  const auto c = cache.counters();
  EXPECT_EQ(c.rejectBySigma, 1u);
  EXPECT_EQ(c.misses, 1u);  // rejects count as fall-throughs
  EXPECT_EQ(c.hits, 0u);
}

TEST(PredictionCache, DistantNeighborRejectsByDistance) {
  PredictionCache cache(3, gateConfig(0.01f, 10.0f));
  const std::vector<float> a = {1.0f, 0.0f, 0.0f};
  const std::vector<float> b = {0.0f, 1.0f, 0.0f};  // orthogonal: dist 1.0
  cache.insert(a.data(), {1.0f, 1.0f});
  const auto r = cache.probe(b.data());
  EXPECT_EQ(r.outcome, PredictionCache::ProbeOutcome::kRejectDist);
  EXPECT_NEAR(r.distance, 1.0f, 1e-5f);
  EXPECT_EQ(cache.counters().rejectByDist, 1u);
}

TEST(PredictionCache, EraMemoIsWriteOnceAndSwapsWithSnapshot) {
  PredictionCache cache(4, gateConfig(0.5f, 10.0f));
  const int keyA = 0;
  const int keyB = 0;
  const auto era1 = cache.eraFor(&keyA, 8);
  EXPECT_EQ(era1->lookup(3), nullptr);
  const std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  era1->memoize(3, v.data());
  ASSERT_NE(era1->lookup(3), nullptr);
  EXPECT_EQ(std::memcmp(era1->lookup(3), v.data(), 4 * sizeof(float)), 0);
  // Same key: same era back. New key: fresh (empty) era, old one intact.
  EXPECT_EQ(cache.eraFor(&keyA, 8).get(), era1.get());
  const auto era2 = cache.eraFor(&keyB, 8);
  EXPECT_NE(era2.get(), era1.get());
  EXPECT_EQ(era2->lookup(3), nullptr);
  EXPECT_NE(era1->lookup(3), nullptr);  // retired era still readable
}

// -- Engine integration ------------------------------------------------------

const features::DataConfig& dataConfig() {
  static features::DataConfig config = [] {
    features::DataConfig c;
    c.designScale = 0.2f;
    return c;
  }();
  return config;
}

const features::DataPipeline& pipeline() {
  static features::DataPipeline* p = new features::DataPipeline(dataConfig());
  return *p;
}

const features::DesignData& or1200() {
  static features::DesignData d = pipeline().build("or1200");
  return d;
}

const features::DesignData& arm9() {
  static features::DesignData d = pipeline().build("arm9");
  return d;
}

serve::BundleManifest tinyOursManifest() {
  serve::BundleManifest manifest;
  manifest.modelKind = "ours";
  manifest.variant = "full";  // Bayesian head: the cacheable kind
  manifest.strategy = "retrieval-test";
  manifest.targetNode = netlist::TechNode::k7nm;
  manifest.vocabularyNodes = dataConfig().nodes;
  manifest.pinFeatureDim = pipeline().featureDim();
  manifest.model.gnnHidden = 16;
  manifest.model.cnnBaseChannels = 4;
  manifest.model.cnnDim = 8;
  manifest.model.headHidden = 16;
  manifest.model.imageResolution = dataConfig().imageResolution;
  manifest.features = dataConfig().features;
  return manifest;
}

const std::string& bundleDir() {
  static std::string dir = [] {
    const serve::BundleManifest manifest = tinyOursManifest();
    const auto model = serve::ModelBundle::instantiate(manifest);
    const std::string d =
        (std::filesystem::temp_directory_path() /
         ("dagt_retrieval_bundle_" + std::to_string(::getpid())))
            .string();
    serve::ModelBundle::save(*model, manifest, d);
    return d;
  }();
  return dir;
}

serve::EngineConfig soloConfig() {
  serve::EngineConfig config;
  config.batching = false;  // solo path: deterministic batch composition
  config.retrieval.enabled = false;
  return config;
}

std::unique_ptr<serve::PredictionEngine> makeEngine(
    const serve::EngineConfig& config, const features::DesignData& d,
    const std::string& key) {
  auto engine = std::make_unique<serve::PredictionEngine>(config);
  engine->addBundleFromDir(bundleDir());
  engine->loadDesign(key, d.netlist, d.node, d.placement, "r1");
  return engine;
}

/// Cache-off bitwise parity: an engine with the retrieval layer disabled
/// (the default) serves exactly what a pre-retrieval engine served — and
/// an enabled engine whose gates never admit (maxDist < 0) must match it
/// bitwise too, because the miss path reproduces the full forward.
void expectCacheOffParity(const features::DesignData& d,
                          const std::string& key) {
  auto off = makeEngine(soloConfig(), d, key);
  serve::EngineConfig onConfig = soloConfig();
  onConfig.retrieval.enabled = true;
  onConfig.retrieval.maxDist = -1.0f;  // nothing ever admits
  auto on = makeEngine(onConfig, d, key);
  ASSERT_NE(on->retrievalCache(key), nullptr);
  EXPECT_EQ(off->retrievalCache(key), nullptr);

  const std::int64_t n = std::min<std::int64_t>(d.numEndpoints(), 24);
  ASSERT_GT(n, 0);
  for (std::int64_t e = 0; e < n; ++e) {
    const float a = off->predictEndpoint(key, e);
    const float b = on->predictEndpoint(key, e);
    // memcmp, not ==: bitwise parity is the contract.
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(float)), 0)
        << key << " endpoint " << e << ": off=" << a << " on=" << b;
  }
  const auto snap = on->metrics();
  EXPECT_TRUE(snap.retrievalEnabled);
  EXPECT_EQ(snap.retrievalHits, 0u);
  EXPECT_EQ(snap.retrievalMisses, static_cast<std::uint64_t>(n));
  EXPECT_EQ(snap.retrievalRejectByDist,
            static_cast<std::uint64_t>(n - 1));  // first probe: empty index
  EXPECT_FALSE(off->metrics().retrievalEnabled);
}

TEST(RetrievalEngine, CacheOffBitwiseParityOr1200) {
  expectCacheOffParity(or1200(), "or1200");
}

TEST(RetrievalEngine, CacheOffBitwiseParityArm9) {
  expectCacheOffParity(arm9(), "arm9");
}

TEST(RetrievalEngine, RepeatQueryHitsAndMatchesWithinBudget) {
  serve::EngineConfig config = soloConfig();
  config.retrieval.enabled = true;
  config.retrieval.maxDist = 1e-4f;     // effectively exact-repeat only
  config.retrieval.maxSigmaPs = 1e9f;   // sigma gate wide open
  const auto& d = or1200();
  auto engine = makeEngine(config, d, "or1200");

  const std::int64_t n = std::min<std::int64_t>(d.numEndpoints(), 16);
  std::vector<float> first(static_cast<std::size_t>(n));
  for (std::int64_t e = 0; e < n; ++e) {
    first[static_cast<std::size_t>(e)] = engine->predictEndpoint("or1200", e);
  }
  const auto cold = engine->metrics();
  EXPECT_EQ(cold.retrievalHits, 0u);
  EXPECT_EQ(cold.retrievalInserts, static_cast<std::uint64_t>(n));
  EXPECT_EQ(cold.retrievalIndexSize, static_cast<std::uint64_t>(n));

  for (std::int64_t e = 0; e < n; ++e) {
    const float again = engine->predictEndpoint("or1200", e);
    // A zero-distance hit replays the endpoint's own posterior; the only
    // difference from the cold value is the scalar-vs-tensor bypass
    // rounding, so it must agree to float precision.
    EXPECT_NEAR(again, first[static_cast<std::size_t>(e)],
                1e-3f * (1.0f + std::abs(first[static_cast<std::size_t>(e)])));
  }
  const auto warm = engine->metrics();
  EXPECT_EQ(warm.retrievalHits, static_cast<std::uint64_t>(n));
  EXPECT_EQ(warm.retrievalEmbedMemoHits, static_cast<std::uint64_t>(n));
  EXPECT_GT(warm.retrievalHitRate, 0.0);
  // Metric keys are part of the documented surface (docs/retrieval.md).
  const std::string json = warm.toJson().dump(0);
  for (const char* needle :
       {"retrieval_hits", "retrieval_misses", "retrieval_hit_rate",
        "retrieval_reject_by_dist", "retrieval_reject_by_sigma",
        "retrieval_inserts", "retrieval_embed_memo_hits",
        "retrieval_index_size", "retrieval_hit_mean_us",
        "retrieval_miss_mean_us"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(RetrievalEngine, SharedCacheServesHitsOnSecondEngine) {
  serve::EngineConfig config = soloConfig();
  config.retrieval.enabled = true;
  config.retrieval.maxDist = 1e-4f;
  config.retrieval.maxSigmaPs = 1e9f;
  const auto& d = or1200();
  auto primary = makeEngine(config, d, "or1200");

  // Warm the primary's cache, then stand up a replica that adopts the
  // snapshot AND the cache (exactly what the fleet router does).
  const std::int64_t n = std::min<std::int64_t>(d.numEndpoints(), 8);
  for (std::int64_t e = 0; e < n; ++e) {
    (void)primary->predictEndpoint("or1200", e);
  }
  auto replica = std::make_unique<serve::PredictionEngine>(config);
  replica->addBundleFromDir(bundleDir());
  replica->adoptDesign("or1200", d.node, "r1",
                       primary->currentSnapshot("or1200"),
                       primary->retrievalCache("or1200"));
  ASSERT_EQ(replica->retrievalCache("or1200").get(),
            primary->retrievalCache("or1200").get());

  for (std::int64_t e = 0; e < n; ++e) {
    (void)replica->predictEndpoint("or1200", e);
  }
  // Replica queries hit posteriors the primary inserted. Counters are per
  // cache (shared), so read them via the cache directly.
  const auto counters = replica->retrievalCache("or1200")->counters();
  EXPECT_EQ(counters.hits, static_cast<std::uint64_t>(n));
  EXPECT_EQ(counters.inserts, static_cast<std::uint64_t>(n));
}

TEST(RetrievalEngine, CacheSurvivesRevisionReload) {
  serve::EngineConfig config = soloConfig();
  config.retrieval.enabled = true;
  const auto& d = or1200();
  auto engine = makeEngine(config, d, "or1200");
  const auto cache = engine->retrievalCache("or1200");
  ASSERT_NE(cache, nullptr);
  // A new revision of the same key keeps the accumulated posteriors.
  engine->loadDesign("or1200", d.netlist, d.node, d.placement, "r2");
  EXPECT_EQ(engine->retrievalCache("or1200").get(), cache.get());
}

}  // namespace
}  // namespace dagt::retrieval
