// Lint fixture (never compiled): linted as src/tensor/ops_fixture.cpp.
// Exactly one kernel-alloc violation survives; the second is suppressed.
#include "tensor/ops_common.hpp"

namespace dagt::tensor {

Tensor badKernel(const Tensor& t) {
  Tensor out = Tensor::zeros(t.shape());  // naked alloc: bypasses BufferPool
  float* scratch =
      new float[16];  // dagt-lint: allow(kernel-alloc) -- fixture suppression
  (void)scratch;
  return out;
}

Tensor goodKernel(const Tensor& t) {
  auto out = detail::makeOut(t.shape());  // pooled: what the rule wants
  return Tensor(std::move(out));
}

}  // namespace dagt::tensor
