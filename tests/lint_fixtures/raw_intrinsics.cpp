// Fixture for the intrinsics-outside-kernels rule: linted under a virtual
// path outside src/tensor/kernels/, the include on line 5 and the two raw
// SIMD uses on line 9 must fire; the suppressed call on line 13 must not.

#include <immintrin.h>

namespace dagt::tensor {

float sumFast(const float* x) { __m256 v = _mm256_loadu_ps(x); return x[0]; }

void scaleFast(float* x) {
  // dagt-lint: allow(intrinsics-outside-kernels)
  (void)_mm256_setzero_ps();
}

}  // namespace dagt::tensor
