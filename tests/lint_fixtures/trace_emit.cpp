// Lint fixture (never compiled): linted as src/serve/fixture.cpp.
// Exactly one trace-macro-only violation survives; one is suppressed, and
// macro sites plus unrelated emit identifiers must not fire.
#include "obs/trace.hpp"

namespace dagt::serve {

void handRolledSpan() {
  obs::TraceEvent event;
  event.name = "serve/hand_rolled";
  obs::TraceRegistry::global().emit(event);  // bypasses the compile-out gate
}

void suppressedSpan(obs::TraceRegistry& registry, obs::TraceEvent event) {
  registry.emit(event);  // dagt-lint: allow(trace-macro-only) -- fixture
}

void macroSitesAreFine() {
  DAGT_TRACE_SCOPE("serve/fixture");
  DAGT_TRACE_INSTANT("serve/fixture_instant", "n", 1);
}

// An unrelated emit identifier (no member access) stays clean:
void emitDiagnostics();
void caller() { emitDiagnostics(); }

// Prose mentioning registry.emit(...) in a comment must not fire either.

}  // namespace dagt::serve
