#pragma once

// Lint fixture (never compiled): linted as src/tensor/ops_common.hpp.
// Exactly one hot-header-std-function violation survives.
#include <functional>

namespace dagt::tensor::detail {

// Type-erased per-element callback in a hot-path header: the violation.
void forEach(std::function<void(int)> fn);

// dagt-lint: allow(hot-header-std-function) -- suppressed on the next line
using Callback = std::function<void(float)>;

template <typename F>
void forEachInlined(F&& fn);  // the template form the rule steers toward

}  // namespace dagt::tensor::detail
