// Lint fixture (never compiled): linted as src/eval/fixture.cpp.
// Exactly one stdout-logging violation survives; one is suppressed.
#include <cstdio>
#include <iostream>

#include "common/logging.hpp"

namespace dagt::eval {

void report(double mae) {
  std::cout << "mae=" << mae << "\n";  // bypasses the logging subsystem
}

void reportSuppressed(double mae) {
  printf("mae=%f\n", mae);  // dagt-lint: allow(stdout-logging)
}

void reportProperly(double mae) {
  DAGT_LOG_INFO("mae=" << mae);  // snprintf-into-logger path is exempt
}

}  // namespace dagt::eval
