// Tokenizer fixture (never compiled): raw string literals. Contents that
// look like rule triggers (new, malloc, rand, _mm256_*) must stay inside
// the literal token and never reach the rule engines; line counting must
// survive multi-line bodies so the marker line below is exact.
static const char* plain = R"(new malloc( rand() _mm256_loadu_ps)";
static const char* delimited = R"ab(contains )" quote-close inside)ab";
static const char* multi = R"(first
second
third)";
static const char* prefixed = u8R"(std::cout << "hi")";
static const wchar_t* wide = LR"(srand(1))";
int marker_after_raw = 12;  // must land on line 12
