#pragma once

// Fixture impersonating src/tensor/kernels/kernels.hpp: a trimmed
// KernelTable with one plain entry and two fused composite entries. Paired
// with fused_registration.cpp, a tier TU that forgets one of the fused
// registrations.

namespace dagt::tensor::kernels {

struct KernelTable {
  void (*gemmRows)(const float* a, const float* b, float* c);
  void (*fusedEwRows)(const float* const* operands, float* out);
  void (*fusedGemmEpilogueRows)(const float* a, const float* b, float* c);
};

}  // namespace dagt::tensor::kernels
