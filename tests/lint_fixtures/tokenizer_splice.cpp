// Tokenizer fixture (never compiled): a backslash-newline splice inside a
// line comment continues the comment, so the "code" on the next physical
// line is comment text, not tokens.
int before = 1;
// this comment splices onto the next line \
int hidden_by_splice = rand();
int after_splice = 7;  // must land on line 7
// a trailing backslash at EOF must not crash \
