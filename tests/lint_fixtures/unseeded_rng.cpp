// Lint fixture (never compiled): linted as src/core/fixture.cpp.
// Exactly one unseeded-rng violation survives; two are suppressed.
#include <cstdlib>
#include <random>

namespace dagt::core {

int unseededDraw() {
  return rand();  // unseeded: every run differs, experiments irreproducible
}

// dagt-lint: allow(unseeded-rng)
static std::mt19937 suppressedEngine;

void seedIt() {
  srand(42);  // dagt-lint: allow(unseeded-rng) -- fixture suppression
}

// The comment channel must not trigger the rule: rand() and mt19937 here
// are prose, not code.

}  // namespace dagt::core
