// Lint fixture (never compiled): companion to guarded_by.hpp, linted as
// src/serve/fixture.cpp. Acquires lockedMutex_ (so its annotation passes)
// and deliberately never touches idleMutex_.
#include "serve/fixture.hpp"

namespace dagt::serve {

void FixtureRegistry::add(std::uint64_t v) {
  std::lock_guard<std::mutex> lock(lockedMutex_);
  values_.push_back(v);
}

std::uint64_t FixtureRegistry::total() const {
  // A mention of idleMutex_ in a comment must not count as an acquisition.
  std::uint64_t sum = 0;
  for (auto v : values_) sum += v;
  return sum;
}

}  // namespace dagt::serve
