// Tokenizer fixture (never compiled): digit separators and exponents. A
// ' separator must stay inside one pp-number token — the ad-hoc lexer once
// opened a bogus char literal at the first ' and swallowed code until the
// next apostrophe (including the rand() below).
static long population = 1'000'000;
static int hexsep = 0xFF'00;
static double expo = 1.5e+10;
static double hexfloat = 0x1.8p-3;
int not_swallowed = rand();  // line 9: visible to rules despite separators
static char quoted = 'x';
static wchar_t wquoted = L'y';
int marker_after_numbers = 12;  // must land on line 12
