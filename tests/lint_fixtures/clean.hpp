#pragma once

// Lint fixture (never compiled): linted as src/serve/clean_fixture.hpp.
// Control case: exercises every rule's scope without violating any of them.
// Expected findings: none.
#include <cstdint>
#include <mutex>
#include <vector>

namespace dagt::serve {

class CleanCounter {
 public:
  void bump() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

  std::uint64_t value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;  // GUARDED_BY(mutex_)
};

}  // namespace dagt::serve
