// Lint fixture (never compiled): linted as src/nn/fixture.hpp.
// No #pragma once anywhere — the pragma-once rule reports at line 1.
// The string below must not fool the lexer into seeing a directive:
namespace dagt {
inline const char* decoy() { return "#pragma once"; }
}  // namespace dagt
