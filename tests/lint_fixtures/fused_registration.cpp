// Fixture impersonating a kernel tier TU (src/tensor/kernels/
// kernels_newtier.cpp). The zero-seeded table below registers fusedEwRows
// but forgets fusedGemmEpilogueRows — fused-kernel-registration must fire
// exactly once, on the construction line. The second, copy-seeded table
// inherits the first tier's registrations and must NOT fire.

namespace dagt::tensor::kernels {
namespace newtier {

void gemmRows(const float* a, const float* b, float* c) {}
void fusedEwRows(const float* const* operands, float* out) {}

}  // namespace newtier

const KernelTable& newtierTable() {
  static const KernelTable t = [] {
    KernelTable x{};
    x.gemmRows = newtier::gemmRows;
    x.fusedEwRows = newtier::fusedEwRows;
    return x;
  }();
  return t;
}

const KernelTable& copySeededTable() {
  static const KernelTable t = [] {
    KernelTable x = newtierTable();
    x.fusedEwRows = newtier::fusedEwRows;
    return x;
  }();
  return t;
}

}  // namespace dagt::tensor::kernels
