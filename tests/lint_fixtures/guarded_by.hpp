#pragma once

// Lint fixture (never compiled): linted as src/serve/fixture.hpp, paired with
// guarded_by.cpp as src/serve/fixture.cpp. Expected findings, one each:
//   guarded-by          -> bareMutex_ has a field-free declaration: no
//                          annotation anywhere references it
//   guarded-by-unknown  -> the ghostGuarded_ annotation names an
//                          undeclared mutex, ghostMutex_
//   guarded-by-unlocked -> idleMutex_ is annotated but never acquired in the
//                          header or the companion .cpp
// lockedMutex_ is the clean case: annotated and acquired in the .cpp.
#include <cstdint>
#include <mutex>
#include <vector>

namespace dagt::serve {

class FixtureRegistry {
 public:
  void add(std::uint64_t v);
  std::uint64_t total() const;

 private:
  std::mutex bareMutex_;  // violation: nothing declares itself guarded by it

  std::vector<std::uint64_t> ghostGuarded_;  // GUARDED_BY(ghostMutex_)

  std::mutex idleMutex_;
  std::uint64_t idleCount_ = 0;  // GUARDED_BY(idleMutex_)

  std::mutex lockedMutex_;
  std::vector<std::uint64_t> values_;  // GUARDED_BY(lockedMutex_)

  // dagt-lint: allow(guarded-by)
  std::mutex suppressedMutex_;
};

}  // namespace dagt::serve
