// dagt-analyze self-tests: every pass is exercised against a seeded
// fixture (the violation must fire exactly once) and a clean twin (zero
// findings), plus golden fact-extraction stability on a miniature two-TU
// project and fingerprint/baseline round-trips.
//
// Fixtures live in tests/analyze_fixtures/ but are analyzed under
// *virtual* paths (e.g. src/serve/...) because several passes gate on the
// repo location of the TU, not its on-disk home.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "facts.hpp"
#include "passes.hpp"

namespace {

using namespace dagt::analyze;

std::string fixturePath(const std::string& name) {
  return std::string(DAGT_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string readFixture(const std::string& name) {
  std::ifstream in(fixturePath(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Analyze fixtures under virtual paths: {virtualPath, fixtureFile}.
std::vector<Finding> analyze(
    const std::vector<std::pair<std::string, std::string>>& files,
    const Options& options = Options{}) {
  std::vector<TuFacts> tus;
  for (const auto& [virtualPath, fixture] : files) {
    tus.push_back(extractFacts(virtualPath, readFixture(fixture)));
  }
  return runPasses(tus, options);
}

std::map<std::string, int> countByPass(const std::vector<Finding>& findings) {
  std::map<std::string, int> counts;
  for (const auto& f : findings) counts[f.pass] += 1;
  return counts;
}

TEST(AnalyzeLockOrder, CycleFiresExactlyOnce) {
  const auto findings = analyze({{"src/fixture/cycle_bad.cpp", "cycle_bad.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "lock-order-cycle");
  EXPECT_NE(findings[0].message.find("Engine::a_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Engine::b_"), std::string::npos);
}

TEST(AnalyzeLockOrder, ConsistentOrderIsQuiet) {
  const auto findings =
      analyze({{"src/fixture/cycle_clean.cpp", "cycle_clean.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeLockOrder, AmbiguousOwnerFiresExactlyOnce) {
  const auto findings =
      analyze({{"src/fixture/ambiguous_bad.cpp", "ambiguous_bad.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "lock-order-ambiguous");
  EXPECT_NE(findings[0].message.find("left->mutex_"), std::string::npos);
}

TEST(AnalyzeLockOrder, MutexAnnotationResolvesAmbiguity) {
  const auto findings =
      analyze({{"src/fixture/ambiguous_clean.cpp", "ambiguous_clean.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeLockOrder, DeclaredOrderViolationFires) {
  const auto findings =
      analyze({{"src/fixture/violation_bad.cpp", "violation_bad.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "lock-order-violation");
}

TEST(AnalyzePool, EachLifetimeViolationFiresOnce) {
  const auto findings = analyze({{"src/serve/pool_bad.cpp", "pool_bad.cpp"}});
  const auto counts = countByPass(findings);
  EXPECT_EQ(findings.size(), 3u) << findingsToJson(findings, {});
  EXPECT_EQ(counts.at("pool-raw-acquire"), 1);
  EXPECT_EQ(counts.at("pool-manual-release"), 1);
  EXPECT_EQ(counts.at("pool-foreign-buffer"), 1);
}

TEST(AnalyzePool, DoubleReleaseFiresOnceInsidePool) {
  const auto findings =
      analyze({{"src/tensor/storage.cpp", "pool_double.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "pool-double-release");
  EXPECT_NE(findings[0].message.find("chunk"), std::string::npos);
}

TEST(AnalyzePool, MakeOutPathIsQuiet) {
  const auto findings =
      analyze({{"src/serve/pool_clean.cpp", "pool_clean.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeGuardedBy, GapFiresExactlyOnce) {
  const auto findings =
      analyze({{"src/fixture/guarded_bad.cpp", "guarded_bad.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "guarded-by-gap");
  EXPECT_NE(findings[0].message.find("Cache::values_"), std::string::npos);
}

TEST(AnalyzeGuardedBy, AnnotationSilencesGap) {
  const auto findings =
      analyze({{"src/fixture/guarded_clean.cpp", "guarded_clean.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeGuardedBy, AllowSuppressesOnMutationLine) {
  const auto findings =
      analyze({{"src/fixture/guarded_allowed.cpp", "guarded_allowed.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeKernelTable, MissingSlotFiresExactlyOnce) {
  const auto findings =
      analyze({{"src/fixture/kernels.hpp", "kernels.hpp"},
               {"src/fixture/kernels_partial.cpp", "kernels_partial.cpp"}});
  ASSERT_EQ(findings.size(), 1u) << findingsToJson(findings, {});
  EXPECT_EQ(findings[0].pass, "kernel-table-complete");
  EXPECT_NE(findings[0].message.find("'scale'"), std::string::npos);
}

TEST(AnalyzeKernelTable, CompleteTableIsQuiet) {
  const auto findings =
      analyze({{"src/fixture/kernels.hpp", "kernels.hpp"},
               {"src/fixture/kernels_complete.cpp", "kernels_complete.cpp"}});
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

TEST(AnalyzeDrift, UndocumentedSpanAndKnobEachFireOnce) {
  Options options;
  options.hasObsDocs = true;
  options.obsDocs = "The `fixture.documented` span covers batch assembly.";
  options.hasPerfDocs = true;
  options.perfDocs = "No knobs documented here.";
  const auto findings =
      analyze({{"src/fixture/drift.cpp", "drift.cpp"}}, options);
  const auto counts = countByPass(findings);
  EXPECT_EQ(findings.size(), 2u) << findingsToJson(findings, {});
  EXPECT_EQ(counts.at("span-drift"), 1);
  EXPECT_EQ(counts.at("knob-drift"), 1);
  for (const auto& f : findings) {
    EXPECT_TRUE(f.message.find("fixture.mystery") != std::string::npos ||
                f.message.find("DAGT_FIXTURE_KNOB") != std::string::npos)
        << f.render();
  }
}

TEST(AnalyzeDrift, DocumentedNamesAreQuiet) {
  Options options;
  options.hasObsDocs = true;
  options.obsDocs = "`fixture.documented` and `fixture.mystery` spans.";
  options.hasPerfDocs = true;
  options.perfDocs = "`DAGT_FIXTURE_KNOB` caps the fixture.";
  const auto findings =
      analyze({{"src/fixture/drift.cpp", "drift.cpp"}}, options);
  EXPECT_TRUE(findings.empty()) << findingsToJson(findings, {});
}

// -- golden fact extraction --------------------------------------------------

std::string goldenDump() {
  std::string dump;
  for (const char* name : {"mini_engine.hpp", "mini_engine.cpp"}) {
    const std::string virtualPath = std::string("golden/") + name;
    dump += serializeFacts(
        extractFacts(virtualPath, readFixture(std::string("golden/") + name)));
  }
  return dump;
}

TEST(AnalyzeGolden, FactExtractionMatchesCommittedDump) {
  const std::string dump = goldenDump();
  const std::string goldenFile = fixturePath("golden/golden_facts.txt");
  if (std::getenv("DAGT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(goldenFile, std::ios::binary);
    out << dump;
    GTEST_SKIP() << "regenerated " << goldenFile;
  }
  std::ifstream in(goldenFile, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden dump; run with DAGT_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(dump, expected.str());
}

TEST(AnalyzeGolden, SerializationRoundTripsByteIdentical) {
  for (const char* name : {"mini_engine.hpp", "mini_engine.cpp"}) {
    const std::string virtualPath = std::string("golden/") + name;
    const TuFacts facts =
        extractFacts(virtualPath, readFixture(std::string("golden/") + name));
    const std::string once = serializeFacts(facts);
    const std::string twice = serializeFacts(parseFacts(once));
    EXPECT_EQ(once, twice) << virtualPath;
  }
}

TEST(AnalyzeGolden, GoldenFactsCoverEveryChannel) {
  // Guards against the extractor silently losing a fact family: the mini
  // project deliberately exercises each record kind that applies to it.
  const std::string dump = goldenDump();
  for (const char* record : {"mutex\t", "guard\t", "fn\t", "acq\t", "mut\t",
                             "span\t", "env\t"}) {
    EXPECT_NE(dump.find(record), std::string::npos)
        << "no '" << record << "' record in golden dump:\n" << dump;
  }
}

// -- fingerprints and baselines ----------------------------------------------

TEST(AnalyzeBaseline, FingerprintIgnoresLineNumbers) {
  Finding a{"guarded-by-gap", "src/x.cpp", 10, "field 'C::f_' unannotated"};
  Finding b = a;
  b.line = 99;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.message += " (changed)";
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(AnalyzeBaseline, JsonRoundTripsFingerprints) {
  Finding a{"span-drift", "src/x.cpp", 3, "span 'a' undocumented"};
  Finding b{"knob-drift", "src/y.cpp", 7, "knob \"B\" undocumented"};
  const std::string json = findingsToJson({a, b}, {true, false});
  const auto fingerprints = parseBaselineFingerprints(json);
  ASSERT_EQ(fingerprints.size(), 2u);
  EXPECT_EQ(fingerprints[0], a.fingerprint());
  EXPECT_EQ(fingerprints[1], b.fingerprint());
  EXPECT_NE(json.find("\"baselined\": true"), std::string::npos);
  EXPECT_NE(json.find("\"baselined\": false"), std::string::npos);
}

TEST(AnalyzeBaseline, EmptyBaselineParsesToNothing) {
  const std::string json = findingsToJson({}, {});
  EXPECT_TRUE(parseBaselineFingerprints(json).empty());
  EXPECT_NE(json.find("\"total\": 0"), std::string::npos);
}

}  // namespace
