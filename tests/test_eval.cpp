#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "eval/kde.hpp"

namespace dagt::eval {
namespace {

TEST(Kde, IntegratesToApproximatelyOne) {
  std::vector<float> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(std::sin(static_cast<float>(i)) * 2.0f + 5.0f);
  }
  const KdeSeries kde = kernelDensity(samples, 256);
  double integral = 0.0;
  for (std::size_t i = 1; i < kde.x.size(); ++i) {
    integral += 0.5 * (kde.density[i] + kde.density[i - 1]) *
                (kde.x[i] - kde.x[i - 1]);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde, PeaksNearTheMode) {
  // Tight cluster at 10 with a few outliers at 0.
  std::vector<float> samples(100, 10.0f);
  for (int i = 0; i < 100; ++i) {
    samples[static_cast<std::size_t>(i)] +=
        0.01f * std::sin(static_cast<float>(i * 37));
  }
  samples.push_back(0.0f);
  const KdeSeries kde = kernelDensity(samples, 128);
  double bestX = 0.0, bestDensity = -1.0;
  for (std::size_t i = 0; i < kde.x.size(); ++i) {
    if (kde.density[i] > bestDensity) {
      bestDensity = kde.density[i];
      bestX = kde.x[i];
    }
  }
  EXPECT_NEAR(bestX, 10.0, 0.5);
}

TEST(Kde, BimodalInputYieldsTwoModes) {
  // The Figure-6 situation: 7nm arrivals near 0.3, 130nm near 5.0.
  std::vector<float> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(0.3f + 0.02f * std::sin(static_cast<float>(i)));
    samples.push_back(5.0f + 0.05f * std::cos(static_cast<float>(i)));
  }
  const KdeSeries kde = kernelDensity(samples, 256, 0.25);
  // Count strict local maxima above 10% of the global peak.
  double peak = 0.0;
  for (const double d : kde.density) peak = std::max(peak, d);
  int modes = 0;
  for (std::size_t i = 1; i + 1 < kde.density.size(); ++i) {
    if (kde.density[i] > kde.density[i - 1] &&
        kde.density[i] > kde.density[i + 1] &&
        kde.density[i] > 0.1 * peak) {
      ++modes;
    }
  }
  EXPECT_EQ(modes, 2);
}

TEST(Kde, CustomBandwidthIsRespected) {
  const std::vector<float> samples = {0.0f, 1.0f, 2.0f};
  const KdeSeries wide = kernelDensity(samples, 64, 5.0);
  const KdeSeries narrow = kernelDensity(samples, 64, 0.05);
  // Wider bandwidth -> flatter curve (lower max density).
  const auto maxOf = [](const KdeSeries& k) {
    double m = 0.0;
    for (const double d : k.density) m = std::max(m, d);
    return m;
  };
  EXPECT_LT(maxOf(wide), maxOf(narrow));
}

TEST(Kde, RejectsEmptyInput) {
  const std::vector<float> empty;
  EXPECT_THROW(kernelDensity(empty), CheckError);
}

TEST(Kde, SilvermanScalesWithSpread) {
  std::vector<float> tight, loose;
  for (int i = 0; i < 50; ++i) {
    tight.push_back(static_cast<float>(i % 5) * 0.01f);
    loose.push_back(static_cast<float>(i % 5) * 10.0f);
  }
  EXPECT_LT(silvermanBandwidth(tight), silvermanBandwidth(loose));
}

}  // namespace
}  // namespace dagt::eval
