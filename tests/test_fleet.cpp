// Fleet router suite. Built into its own binary (dagt_fleet_tests, label
// "fleet") so it can be compiled alone under ThreadSanitizer, like the
// concurrency suite:
//
//   cmake -B build-tsan -S . -DDAGT_SANITIZE=thread
//   cmake --build build-tsan --target dagt_fleet_tests
//   ./build-tsan/tests/dagt_fleet_tests
//
// Covers the ring (determinism, balance, rebalance stability), routed vs
// direct parity, shard-death failover (no lost or duplicated responses),
// ownership migration on addShard, the typed overload shed, hedged retry,
// and a concurrent route/metrics/rebalance stress for TSan. Prediction
// quality is irrelevant here, so the bundle wraps an untrained (randomly
// initialized) deterministic dac23 model — cheap to build and forward.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "features/design_data.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/shard_router.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_engine.hpp"

namespace dagt::fleet {
namespace {

// -- Tiny untrained bundle fixture (same shape as the concurrency suite) -----

const features::DataConfig& dataConfig() {
  static features::DataConfig config = [] {
    features::DataConfig c;
    c.designScale = 0.2f;
    return c;
  }();
  return config;
}

const features::DataPipeline& pipeline() {
  static features::DataPipeline* p = new features::DataPipeline(dataConfig());
  return *p;
}

const features::DesignData& target7() {
  static features::DesignData d = pipeline().build("smallboom");
  return d;
}

serve::BundleManifest tinyManifest() {
  serve::BundleManifest manifest;
  manifest.modelKind = "dac23";
  manifest.variant = "shared";
  manifest.strategy = "fleet-test";
  manifest.targetNode = netlist::TechNode::k7nm;
  manifest.vocabularyNodes = dataConfig().nodes;
  manifest.pinFeatureDim = pipeline().featureDim();
  manifest.model.gnnHidden = 16;
  manifest.model.cnnBaseChannels = 4;
  manifest.model.cnnDim = 8;
  manifest.model.headHidden = 16;
  manifest.model.imageResolution = dataConfig().imageResolution;
  manifest.features = dataConfig().features;
  return manifest;
}

const std::string& bundleDir() {
  static std::string dir = [] {
    const serve::BundleManifest manifest = tinyManifest();
    const auto model = serve::ModelBundle::instantiate(manifest);
    const std::string d =
        (std::filesystem::temp_directory_path() /
         ("dagt_fleet_bundle_" + std::to_string(::getpid())))
            .string();
    serve::ModelBundle::save(*model, manifest, d);
    return d;
  }();
  return dir;
}

/// The design's feature snapshot, built exactly once (in a throwaway
/// engine) and shared by every router in the suite — the fleet's shared
/// read-only feature segment, and also what makes parity bitwise.
std::shared_ptr<const serve::ServableDesign> sharedSnapshot() {
  static std::shared_ptr<const serve::ServableDesign> snap = [] {
    serve::PredictionEngine builder;
    builder.addBundleFromDir(bundleDir());
    const auto& d = target7();
    builder.loadDesign("seed", d.netlist, d.node, d.placement, "r1");
    return builder.currentSnapshot("seed");
  }();
  return snap;
}

FleetConfig testConfig(std::int32_t shards, std::int32_t replication) {
  FleetConfig fc;
  fc.shards = shards;
  fc.replication = replication;
  fc.engine.maxBatch = 16;
  fc.engine.maxWaitUs = 100;
  return fc;
}

std::unique_ptr<ShardRouter> makeRouter(FleetConfig fc,
                                        const std::vector<std::string>& keys) {
  auto router = std::make_unique<ShardRouter>(fc);
  router->addBundleFromDir(bundleDir());
  for (const std::string& key : keys) {
    router->adoptDesign(key, target7().node, "r1", sharedSnapshot());
  }
  return router;
}

/// First salt whose key "d<i>~<salt>" lands its primary owner on `want`
/// for a `shards`-wide canonical ring. Deterministic — no RNG (and the
/// router uses the same default vnodes, so its placement agrees).
std::string saltedKey(int i, std::int32_t shards, std::int32_t want) {
  HashRing probe(FleetConfig{}.virtualNodes);
  for (std::int32_t s = 0; s < shards; ++s) probe.addShard(s);
  for (int salt = 0; salt < 256; ++salt) {
    const std::string key =
        "d" + std::to_string(i) + "~" + std::to_string(salt);
    if (probe.shardsFor(key, 1).front() == want) return key;
  }
  ADD_FAILURE() << "no salt lands d" << i << " on shard " << want;
  return "d" + std::to_string(i) + "~0";
}

// -- HashRing ----------------------------------------------------------------

TEST(HashRing, DeterministicAcrossInstances) {
  HashRing a(64), b(64);
  for (std::int32_t s = 0; s < 4; ++s) {
    a.addShard(s);
    b.addShard(s);
  }
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    EXPECT_EQ(a.shardsFor(key, 2), b.shardsFor(key, 2)) << key;
  }
}

TEST(HashRing, ReplicasAreDistinctAndCapped) {
  HashRing ring(32);
  ring.addShard(0);
  ring.addShard(1);
  ring.addShard(2);
  for (int i = 0; i < 100; ++i) {
    const auto owners = ring.shardsFor("k" + std::to_string(i), 5);
    EXPECT_EQ(owners.size(), 3u);  // capped at the shard count
    const std::set<std::int32_t> distinct(owners.begin(), owners.end());
    EXPECT_EQ(distinct.size(), owners.size());
  }
}

TEST(HashRing, BalancesKeysAcrossShards) {
  HashRing ring(64);
  constexpr std::int32_t kShards = 4;
  for (std::int32_t s = 0; s < kShards; ++s) ring.addShard(s);
  std::map<std::int32_t, int> counts;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    counts[ring.shardsFor("key" + std::to_string(i), 1).front()]++;
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(kShards));
  for (const auto& [shard, count] : counts) {
    // Loose uniformity: every shard owns a meaningful share (exact
    // uniformity would need far more virtual nodes than placement does).
    EXPECT_GT(count, kKeys / (kShards * 4)) << "shard " << shard;
  }
}

TEST(HashRing, AddingShardMovesOnlyAMinorityOfKeys) {
  HashRing ring(64);
  for (std::int32_t s = 0; s < 4; ++s) ring.addShard(s);
  constexpr int kKeys = 1000;
  std::vector<std::int32_t> before;
  for (int i = 0; i < kKeys; ++i) {
    before.push_back(ring.shardsFor("key" + std::to_string(i), 1).front());
  }
  ring.addShard(4);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const auto owner = ring.shardsFor("key" + std::to_string(i), 1).front();
    if (owner != before[static_cast<std::size_t>(i)]) {
      ++moved;
      // Consistent hashing: a key that moves can only move to the new
      // shard, never between old ones.
      EXPECT_EQ(owner, 4);
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);  // ~1/5 expected; < 1/2 is the hard claim
}

// -- Router ------------------------------------------------------------------

TEST(ShardRouter, ParityRoutedVsDirect) {
  const std::string key = saltedKey(0, 2, 1);
  auto router = makeRouter(testConfig(2, 1), {key});

  serve::PredictionEngine direct(testConfig(2, 1).engine);
  direct.addBundleFromDir(bundleDir());
  direct.adoptDesign(key, target7().node, "r1", sharedSnapshot());

  const std::int64_t endpoints = sharedSnapshot()->numEndpoints();
  const std::int64_t queries = std::min<std::int64_t>(32, endpoints);
  for (std::int64_t e = 0; e < queries; ++e) {
    const float routed = router->predictEndpoint(key, e);
    const float straight = direct.predictEndpoint(key, e);
    ASSERT_TRUE(std::isfinite(routed));
    EXPECT_EQ(std::memcmp(&routed, &straight, sizeof(float)), 0)
        << "endpoint " << e << ": " << routed << " vs " << straight;
  }
  const auto full = router->predictDesign(key);
  const auto fullDirect = direct.predictDesign(key);
  ASSERT_EQ(full.size(), fullDirect.size());
  EXPECT_EQ(std::memcmp(full.data(), fullDirect.data(),
                        full.size() * sizeof(float)),
            0);
}

TEST(ShardRouter, ShardDeathFailoverLosesNoResponses) {
  const std::string key = saltedKey(0, 2, 0);
  auto router = makeRouter(testConfig(2, 2), {key});
  const std::int64_t endpoints = sharedSnapshot()->numEndpoints();
  const std::int32_t victim = router->ownersOf(key).front();

  constexpr int kCallers = 4;
  constexpr int kPerCaller = 20;
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> badValue{false};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int i = 0; i < kPerCaller; ++i) {
        const float v =
            router->predictEndpoint(key, (c * 13 + i) % endpoints);
        if (!std::isfinite(v)) badValue = true;
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Kill the primary owner mid-traffic: dispatch must route around it and
  // every blocking call above must still return exactly once.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  router->killShard(victim);
  for (auto& t : callers) t.join();

  EXPECT_FALSE(badValue.load());
  EXPECT_EQ(answered.load(),
            static_cast<std::uint64_t>(kCallers) * kPerCaller);
  const auto metrics = router->metrics();
  EXPECT_FALSE(metrics.perShard[static_cast<std::size_t>(victim)].healthy);
  // The fleet keeps serving on the surviving replica.
  EXPECT_TRUE(std::isfinite(router->predictEndpoint(key, 0)));
}

TEST(ShardRouter, AddShardRebalancesAndKeepsAnswers) {
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) keys.push_back(saltedKey(i, 2, i % 2));
  auto router = makeRouter(testConfig(2, 1), keys);

  std::map<std::string, std::vector<std::int32_t>> ownersBefore;
  std::map<std::string, float> valueBefore;
  for (const auto& key : keys) {
    ownersBefore[key] = router->ownersOf(key);
    valueBefore[key] = router->predictEndpoint(key, 3);
  }

  const std::int32_t added = router->addShard();
  EXPECT_EQ(added, 2);
  EXPECT_EQ(router->shardCount(), 3);

  int moved = 0;
  for (const auto& key : keys) {
    const auto owners = router->ownersOf(key);
    if (owners != ownersBefore[key]) {
      ++moved;
      EXPECT_EQ(owners.front(), added);  // keys only move to the new shard
    }
    // Moved or not, the answer is the same snapshot through the same
    // bundle weights — bitwise stable across the rebalance.
    const float after = router->predictEndpoint(key, 3);
    EXPECT_EQ(std::memcmp(&after, &valueBefore[key], sizeof(float)), 0)
        << key;
  }
  // 6 keys on 3 shards: rebalance moved at least one onto the new shard.
  EXPECT_GE(moved, 1);
  EXPECT_GE(router->metrics().rebalances, 1u);
}

TEST(ShardRouter, OverloadShedsTypedErrorInsteadOfQueueing) {
  FleetConfig fc = testConfig(1, 1);
  fc.maxInflight = 1;
  fc.engine.maxWaitUs = 20000;  // park the admitted request in the window
  const std::string key = "overload";
  auto router = makeRouter(fc, {key});

  constexpr int kCallers = 4;
  std::atomic<int> successes{0};
  std::atomic<int> sheds{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      try {
        (void)router->predictEndpoint(key, c);
        successes.fetch_add(1, std::memory_order_relaxed);
      } catch (const OverloadShedError& e) {
        EXPECT_NE(std::string(e.what()).find("max inflight"),
                  std::string::npos);
        sheds.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : callers) t.join();

  // Every caller got a definite outcome (no hang), at least one request
  // was served, at least one was refused, and the counters agree.
  EXPECT_EQ(successes.load() + sheds.load(), kCallers);
  EXPECT_GE(successes.load(), 1);
  EXPECT_GE(sheds.load(), 1);
  const auto metrics = router->metrics();
  EXPECT_EQ(metrics.sheds, static_cast<std::uint64_t>(sheds.load()));
}

TEST(ShardRouter, HedgeDuplicatesSlowShardAndFirstReplyWins) {
  FleetConfig fc = testConfig(2, 2);
  fc.hedgeAfterUs = 20000;
  fc.engine.maxWaitUs = 60000;  // wide window: every solo query is "slow"
  fc.maxInflight = 8;
  const std::string key = saltedKey(0, 2, 0);
  auto router = makeRouter(fc, {key});
  const std::int64_t endpoints = sharedSnapshot()->numEndpoints();

  // Park one query on the primary owner: it opens a 60ms coalescing
  // window there at t=0. The main query starts at t=10ms, selects the
  // idle replica as its primary (fresh window, fires at t=70ms) and
  // hedges back to the parked shard at t=30ms — where it joins the
  // already-open batch and completes at t=60ms, a solid 10ms before its
  // own window. First reply wins: the hedge. (The hedge delay must
  // exceed the 10ms stagger, or the parker's own hedge would open the
  // second shard's window early and erase the margin.)
  std::thread parker([&] { (void)router->predictEndpoint(key, 1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const float v = router->predictEndpoint(key, 2 % endpoints);
  parker.join();
  EXPECT_TRUE(std::isfinite(v));

  const auto metrics = router->metrics();
  EXPECT_GE(metrics.hedges, 1u);
  EXPECT_GE(metrics.hedgeWins, 1u);
  // The abandoned loser is reaped once it completes; in-flight counts
  // must return to zero (retry a few times — the reap is opportunistic).
  for (int i = 0; i < 50; ++i) {
    std::int64_t inflight = 0;
    for (const auto& shard : router->metrics().perShard) {
      inflight += shard.inflight;
    }
    if (inflight == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::int64_t inflight = 0;
  for (const auto& shard : router->metrics().perShard) {
    inflight += shard.inflight;
  }
  EXPECT_EQ(inflight, 0);
}

TEST(ShardRouter, ConcurrentRouteMetricsAndRebalanceStress) {
  std::vector<std::string> keys;
  for (int i = 0; i < 3; ++i) keys.push_back(saltedKey(i, 2, i % 2));
  auto router = makeRouter(testConfig(2, 2), keys);
  const std::int64_t endpoints = sharedSnapshot()->numEndpoints();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      const std::string& key = keys[static_cast<std::size_t>(c) % keys.size()];
      for (int i = 0; i < 15; ++i) {
        while (true) {
          try {
            const float v =
                router->predictEndpoint(key, (c * 17 + i) % endpoints);
            if (!std::isfinite(v)) failed = true;
            break;
          } catch (const OverloadShedError&) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 30; ++i) {
      const auto snap = router->metrics();
      if (snap.shards < 2) failed = true;
      for (const auto& shard : snap.perShard) {
        if (shard.inflight < 0) failed = true;
      }
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    (void)router->addShard();
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 40; ++i) {
      for (const auto& key : keys) {
        if (router->ownersOf(key).empty()) failed = true;
      }
      if (router->shardCount() < 2) failed = true;
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(router->shardCount(), 3);
  EXPECT_GE(router->metrics().requests, 4u * 15u);
}

}  // namespace
}  // namespace dagt::fleet
