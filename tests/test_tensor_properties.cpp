// Property-style parameterized sweeps over the tensor engine: reference
// implementations, algebraic identities and gradient checks across a grid
// of shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace dagt::tensor {
namespace {

// ---------------------------------------------------------------------------
// Matmul properties over a shape grid
// ---------------------------------------------------------------------------

struct MatmulShape {
  std::int64_t n, k, m;
};

class MatmulProperty : public ::testing::TestWithParam<MatmulShape> {};

TEST_P(MatmulProperty, MatchesNaiveReference) {
  const auto [n, k, m] = GetParam();
  Rng rng(n * 100 + k * 10 + m);
  const Tensor a = Tensor::randn({n, k}, rng);
  const Tensor b = Tensor::randn({k, m}, rng);
  const Tensor c = matmul(a, b);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-3 * std::max(1.0, std::abs(acc)));
    }
  }
}

TEST_P(MatmulProperty, DistributesOverAddition) {
  const auto [n, k, m] = GetParam();
  Rng rng(n * 7 + k * 5 + m * 3);
  const Tensor a = Tensor::randn({n, k}, rng);
  const Tensor b1 = Tensor::randn({k, m}, rng);
  const Tensor b2 = Tensor::randn({k, m}, rng);
  const Tensor lhs = matmul(a, add(b1, b2));
  const Tensor rhs = add(matmul(a, b1), matmul(a, b2));
  for (std::int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i],
                1e-3f * std::max(1.0f, std::abs(rhs.data()[i])));
  }
}

TEST_P(MatmulProperty, TransposeIdentity) {
  // (A B)^T == B^T A^T
  const auto [n, k, m] = GetParam();
  Rng rng(n + k + m);
  const Tensor a = Tensor::randn({n, k}, rng);
  const Tensor b = Tensor::randn({k, m}, rng);
  const Tensor lhs = transpose2d(matmul(a, b));
  const Tensor rhs = matmul(transpose2d(b), transpose2d(a));
  for (std::int64_t i = 0; i < lhs.numel(); ++i) {
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i],
                1e-3f * std::max(1.0f, std::abs(rhs.data()[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, MatmulProperty,
    ::testing::Values(MatmulShape{1, 1, 1}, MatmulShape{2, 3, 4},
                      MatmulShape{5, 1, 7}, MatmulShape{8, 8, 8},
                      MatmulShape{17, 33, 9}, MatmulShape{64, 32, 16}),
    [](const auto& info) {
      return std::to_string(info.param.n) + "x" +
             std::to_string(info.param.k) + "x" +
             std::to_string(info.param.m);
    });

// ---------------------------------------------------------------------------
// Conv2d against a naive reference over parameter grid
// ---------------------------------------------------------------------------

struct ConvCase {
  std::int64_t channels, size, filters, kernel, stride, pad;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvProperty, MatchesNaiveReference) {
  const auto p = GetParam();
  Rng rng(p.size * 13 + p.kernel);
  const Tensor x = Tensor::randn({2, p.channels, p.size, p.size}, rng);
  const Tensor w =
      Tensor::randn({p.filters, p.channels, p.kernel, p.kernel}, rng);
  const Tensor b = Tensor::randn({p.filters}, rng);
  const Tensor out = conv2d(x, w, b, p.stride, p.pad);

  const std::int64_t oh = (p.size + 2 * p.pad - p.kernel) / p.stride + 1;
  ASSERT_EQ(out.shape(), (Shape{2, p.filters, oh, oh}));
  const float* xp = x.data();
  const float* wp = w.data();
  for (std::int64_t s = 0; s < 2; ++s) {
    for (std::int64_t f = 0; f < p.filters; ++f) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < oh; ++ox) {
          double acc = b.data()[f];
          for (std::int64_t c = 0; c < p.channels; ++c) {
            for (std::int64_t ky = 0; ky < p.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < p.kernel; ++kx) {
                const std::int64_t iy = oy * p.stride + ky - p.pad;
                const std::int64_t ix = ox * p.stride + kx - p.pad;
                if (iy < 0 || iy >= p.size || ix < 0 || ix >= p.size) {
                  continue;
                }
                acc += static_cast<double>(
                           xp[((s * p.channels + c) * p.size + iy) * p.size +
                              ix]) *
                       wp[((f * p.channels + c) * p.kernel + ky) * p.kernel +
                          kx];
              }
            }
          }
          const float got =
              out.data()[((s * p.filters + f) * oh + oy) * oh + ox];
          EXPECT_NEAR(got, acc, 1e-3 * std::max(1.0, std::abs(acc)));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, ConvProperty,
    ::testing::Values(ConvCase{1, 6, 1, 1, 1, 0}, ConvCase{2, 8, 3, 3, 1, 1},
                      ConvCase{3, 8, 4, 3, 2, 1}, ConvCase{2, 7, 2, 5, 2, 2},
                      ConvCase{4, 12, 8, 3, 3, 0}),
    [](const auto& info) {
      const auto& p = info.param;
      return "c" + std::to_string(p.channels) + "s" + std::to_string(p.size) +
             "f" + std::to_string(p.filters) + "k" + std::to_string(p.kernel) +
             "st" + std::to_string(p.stride) + "p" + std::to_string(p.pad);
    });

// ---------------------------------------------------------------------------
// Gradient sweep across composite expressions and sizes
// ---------------------------------------------------------------------------

class GradSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GradSweep, CompositeExpressionGradcheck) {
  const std::int64_t n = GetParam();
  Rng rng(n * 31);
  Tensor x = Tensor::randn({n, 3}, rng, 0.6f, true);
  const Tensor w = Tensor::randn({3, 3}, rng, 0.5f);

  auto loss = [&] {
    const Tensor h = tanhOp(matmul(x, w));
    const Tensor g = sigmoid(sumDim1(square(h)));
    return meanAll(mul(g, g));
  };
  x.zeroGrad();
  Tensor l = loss();
  l.backward();
  const Tensor analytic = x.grad();
  ASSERT_TRUE(analytic.defined());

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); i += std::max<std::int64_t>(1, n / 4)) {
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const float up = loss().item();
    x.data()[i] = saved - eps;
    const float down = loss().item();
    x.data()[i] = saved;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                2e-2f * std::max(1.0f, std::abs(numeric)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GradSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ---------------------------------------------------------------------------
// Zero-copy view chains: aliasing + gradcheck over a shape grid
// ---------------------------------------------------------------------------

struct ViewCase {
  std::int64_t rows, cols;
  std::int64_t begin, end;  // row-slice of the reshaped [cols, rows] view
};

class ViewChainProperty : public ::testing::TestWithParam<ViewCase> {};

TEST_P(ViewChainProperty, ChainAliasesBaseStorage) {
  const auto [rows, cols, begin, end] = GetParam();
  Rng rng(rows * 13 + cols);
  Tensor x = Tensor::randn({rows, cols}, rng);
  Tensor r = reshape(x, {cols, rows});
  Tensor s = sliceRows(r, begin, end);
  Tensor f = flattenView(s);
  EXPECT_TRUE(r.sharesStorageWith(x));
  EXPECT_TRUE(s.sharesStorageWith(x));
  EXPECT_TRUE(f.sharesStorageWith(x));
  EXPECT_EQ(f.data(), x.data() + begin * rows);
  // Writing the base shows through the whole chain.
  x.data()[begin * rows] = 123.0f;
  EXPECT_FLOAT_EQ(f.data()[0], 123.0f);
}

TEST_P(ViewChainProperty, GradcheckThroughChain) {
  const auto [rows, cols, begin, end] = GetParam();
  Rng rng(rows * 17 + cols * 3);
  Tensor x = Tensor::randn({rows, cols}, rng, 0.6f, true);

  auto loss = [&] {
    const Tensor r = reshape(x, {cols, rows});
    const Tensor s = sliceRows(r, begin, end);
    return sumAll(square(flattenView(s)));
  };
  x.zeroGrad();
  Tensor l = loss();
  l.backward();
  const Tensor analytic = x.grad();
  ASSERT_TRUE(analytic.defined());

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x.data()[i];
    x.data()[i] = saved + eps;
    const float up = loss().item();
    x.data()[i] = saved - eps;
    const float down = loss().item();
    x.data()[i] = saved;
    const float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic.data()[i], numeric,
                2e-2f * std::max(1.0f, std::abs(numeric)))
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, ViewChainProperty,
    ::testing::Values(ViewCase{2, 3, 0, 2}, ViewCase{3, 4, 1, 3},
                      ViewCase{4, 6, 1, 5}, ViewCase{8, 2, 0, 1},
                      ViewCase{5, 5, 2, 5}),
    [](const auto& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "_s" +
             std::to_string(info.param.begin) +
             std::to_string(info.param.end);
    });

// ---------------------------------------------------------------------------
// Segment / gather identities
// ---------------------------------------------------------------------------

class SegmentProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SegmentProperty, SegmentSumOfOnesCountsRows) {
  const std::int64_t rows = GetParam();
  Rng rng(rows);
  const Tensor src = Tensor::ones({rows, 2});
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  const std::int64_t numSeg = std::max<std::int64_t>(1, rows / 3);
  std::vector<std::int64_t> expect(static_cast<std::size_t>(numSeg), 0);
  for (std::int64_t i = 0; i < rows; ++i) {
    seg[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(rng.uniformInt(
            static_cast<std::uint64_t>(numSeg)));
    ++expect[static_cast<std::size_t>(seg[static_cast<std::size_t>(i)])];
  }
  const Tensor out = segmentSum(src, seg, numSeg);
  for (std::int64_t s = 0; s < numSeg; ++s) {
    EXPECT_FLOAT_EQ(out.at(s, 0),
                    static_cast<float>(expect[static_cast<std::size_t>(s)]));
  }
}

TEST_P(SegmentProperty, SegmentMaxDominatesSegmentMean) {
  const std::int64_t rows = GetParam();
  Rng rng(rows * 7);
  const Tensor src = Tensor::randn({rows, 3}, rng);
  std::vector<std::int64_t> seg(static_cast<std::size_t>(rows));
  const std::int64_t numSeg = std::max<std::int64_t>(1, rows / 4);
  std::vector<float> count(static_cast<std::size_t>(numSeg), 0.0f);
  for (std::int64_t i = 0; i < rows; ++i) {
    seg[static_cast<std::size_t>(i)] = i % numSeg;
    count[static_cast<std::size_t>(i % numSeg)] += 1.0f;
  }
  const Tensor sums = segmentSum(src, seg, numSeg);
  const Tensor maxs = segmentMax(src, seg, numSeg);
  for (std::int64_t s = 0; s < numSeg; ++s) {
    for (std::int64_t c = 0; c < 3; ++c) {
      const float mean = sums.at(s, c) / count[static_cast<std::size_t>(s)];
      EXPECT_GE(maxs.at(s, c) + 1e-6f, mean);
    }
  }
}

TEST_P(SegmentProperty, IndexSelectThenSegmentSumRoundTrip) {
  // Scattering back what was gathered reproduces row sums.
  const std::int64_t rows = GetParam();
  Rng rng(rows * 11);
  const Tensor base = Tensor::randn({rows, 2}, rng);
  std::vector<std::int64_t> idx;
  for (std::int64_t i = 0; i < rows; ++i) {
    idx.push_back(i);
    idx.push_back(i);  // duplicate every row
  }
  const Tensor gathered = indexSelect0(base, idx);
  const Tensor back = segmentSum(gathered, idx, rows);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(back.at(i, c), 2.0f * base.at(i, c), 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RowCounts, SegmentProperty,
                         ::testing::Values(1, 3, 8, 20, 64));

// ---------------------------------------------------------------------------
// Reduction identities
// ---------------------------------------------------------------------------

class ReduceProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ReduceProperty, SumDimsCompose) {
  const std::int64_t n = GetParam();
  Rng rng(n * 3);
  const Tensor x = Tensor::randn({n, 5}, rng);
  const float viaDim0 = sumAll(sumDim0(x)).item();
  const float viaDim1 = sumAll(sumDim1(x)).item();
  const float direct = sumAll(x).item();
  EXPECT_NEAR(viaDim0, direct, 1e-3f * std::max(1.0f, std::abs(direct)));
  EXPECT_NEAR(viaDim1, direct, 1e-3f * std::max(1.0f, std::abs(direct)));
}

TEST_P(ReduceProperty, LogSumExpBounds) {
  // max(row) <= lse(row) <= max(row) + log(cols)
  const std::int64_t n = GetParam();
  Rng rng(n * 17);
  const Tensor x = Tensor::randn({n, 6}, rng, 3.0f);
  const Tensor lse = logSumExpDim1(x);
  for (std::int64_t r = 0; r < n; ++r) {
    float rowMax = x.at(r, 0);
    for (std::int64_t c = 1; c < 6; ++c) rowMax = std::max(rowMax, x.at(r, c));
    EXPECT_GE(lse.data()[r] + 1e-4f, rowMax);
    EXPECT_LE(lse.data()[r], rowMax + std::log(6.0f) + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(RowCounts, ReduceProperty,
                         ::testing::Values(1, 2, 7, 31));

}  // namespace
}  // namespace dagt::tensor
