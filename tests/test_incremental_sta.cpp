#include <gtest/gtest.h>

#include "designgen/design_suite.hpp"
#include "place/placer.hpp"
#include "sta/incremental_sta.hpp"
#include "sta/sta_engine.hpp"

namespace dagt::sta {
namespace {

using netlist::CellId;
using netlist::CellLibrary;
using netlist::CellTypeId;
using netlist::Netlist;
using netlist::TechNode;

struct Fixture {
  CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  Netlist nl;
  std::vector<NetParasitics> parasitics;

  explicit Fixture(const char* name = "or1200", float scale = 0.3f)
      : nl([&] {
          const designgen::DesignSuite suite(scale);
          return suite.buildNetlist(suite.entry(name), lib);
        }()) {
    place::Placer::place(nl);
    const RouteEstimator estimator(
        nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
    parasitics = estimator.estimateAll();
  }

  /// A combinational cell with an available larger drive variant.
  CellId findResizableCell(int skip = 0) const {
    for (CellId c = 0; c < nl.numCells(); ++c) {
      const auto& type = nl.cellTypeOf(c);
      if (type.isSequential) continue;
      const auto& variants = lib.cellsForFunction(type.function);
      if (lib.cell(variants.back()).driveStrength > type.driveStrength) {
        if (skip-- == 0) return c;
      }
    }
    return netlist::kInvalidId;
  }

  CellTypeId biggerVariant(CellId cell) const {
    const auto& type = nl.cellTypeOf(cell);
    return lib.cellsForFunction(type.function).back();
  }
};

void expectIdentical(const TimingResult& a, const TimingResult& b) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size());
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    ASSERT_EQ(a.arrival[i], b.arrival[i]) << "arrival of pin " << i;
    ASSERT_EQ(a.slew[i], b.slew[i]) << "slew of pin " << i;
    ASSERT_EQ(a.loadCap[i], b.loadCap[i]) << "load of pin " << i;
  }
  EXPECT_EQ(a.worstArrival, b.worstArrival);
}

TEST(IncrementalSta, InitialStateMatchesFullRun) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, SingleResizeMatchesFullRerun) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  f.nl.resizeCell(cell, f.biggerVariant(cell));
  inc.onCellResized(cell);
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, ManySequentialResizesStayExact) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  for (int i = 0; i < 25; ++i) {
    const CellId cell = f.findResizableCell(i * 7);
    if (cell == netlist::kInvalidId) break;
    f.nl.resizeCell(cell, f.biggerVariant(cell));
    inc.onCellResized(cell);
  }
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, VisitsOnlyAFractionOfTheDesign) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  std::int64_t total = 0;
  int updates = 0;
  for (int i = 0; i < 10; ++i) {
    const CellId cell = f.findResizableCell(i * 13);
    if (cell == netlist::kInvalidId) break;
    f.nl.resizeCell(cell, f.biggerVariant(cell));
    inc.onCellResized(cell);
    total += inc.lastUpdateVisited();
    ++updates;
  }
  ASSERT_GT(updates, 0);
  // On a multi-thousand-pin design a single resize should touch well under
  // half the pins on average — that is the whole point of incrementality.
  EXPECT_LT(total / updates, f.nl.numPins() / 2)
      << "average visited " << total / updates << " of " << f.nl.numPins();
}

TEST(IncrementalSta, NoOpResizeVisitsAlmostNothing) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  // "Resize" to the same type: loads and arcs unchanged, so propagation
  // must die out immediately after the seed pins.
  f.nl.resizeCell(cell, f.nl.cell(cell).type);
  inc.onCellResized(cell);
  EXPECT_LE(inc.lastUpdateVisited(),
            static_cast<std::int64_t>(
                2 * f.nl.cell(cell).inputPins.size() + 1));
}

TEST(IncrementalSta, FullRefreshRestoresReference) {
  Fixture f("arm9", 0.4f);
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  f.nl.resizeCell(cell, f.biggerVariant(cell));
  inc.fullRefresh();
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

}  // namespace
}  // namespace dagt::sta
