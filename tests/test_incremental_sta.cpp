#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "designgen/design_suite.hpp"
#include "place/placer.hpp"
#include "sta/incremental_sta.hpp"
#include "sta/netlist_edits.hpp"
#include "sta/sta_engine.hpp"

namespace dagt::sta {
namespace {

using netlist::CellId;
using netlist::CellLibrary;
using netlist::CellTypeId;
using netlist::Netlist;
using netlist::TechNode;

struct Fixture {
  CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  Netlist nl;
  place::PlacementResult placement;
  std::vector<NetParasitics> parasitics;

  explicit Fixture(const char* name = "or1200", float scale = 0.3f)
      : nl([&] {
          const designgen::DesignSuite suite(scale);
          return suite.buildNetlist(suite.entry(name), lib);
        }()) {
    placement = place::Placer::place(nl);
    const RouteEstimator estimator(
        nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
    parasitics = estimator.estimateAll();
  }

  /// Wire parasitics re-estimated from the netlist's current pin
  /// locations — the reference input after moves or structural edits.
  std::vector<NetParasitics> freshParasitics() const {
    const RouteEstimator estimator(
        nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
    return estimator.estimateAll();
  }

  /// A combinational cell with an available larger drive variant.
  CellId findResizableCell(int skip = 0) const {
    for (CellId c = 0; c < nl.numCells(); ++c) {
      const auto& type = nl.cellTypeOf(c);
      if (type.isSequential) continue;
      const auto& variants = lib.cellsForFunction(type.function);
      if (lib.cell(variants.back()).driveStrength > type.driveStrength) {
        if (skip-- == 0) return c;
      }
    }
    return netlist::kInvalidId;
  }

  CellTypeId biggerVariant(CellId cell) const {
    const auto& type = nl.cellTypeOf(cell);
    return lib.cellsForFunction(type.function).back();
  }
};

void expectIdentical(const TimingResult& a, const TimingResult& b) {
  ASSERT_EQ(a.arrival.size(), b.arrival.size());
  for (std::size_t i = 0; i < a.arrival.size(); ++i) {
    ASSERT_EQ(a.arrival[i], b.arrival[i]) << "arrival of pin " << i;
    ASSERT_EQ(a.slew[i], b.slew[i]) << "slew of pin " << i;
    ASSERT_EQ(a.loadCap[i], b.loadCap[i]) << "load of pin " << i;
  }
  EXPECT_EQ(a.worstArrival, b.worstArrival);
}

TEST(IncrementalSta, InitialStateMatchesFullRun) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, SingleResizeMatchesFullRerun) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  f.nl.resizeCell(cell, f.biggerVariant(cell));
  inc.onCellResized(cell);
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, ManySequentialResizesStayExact) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  for (int i = 0; i < 25; ++i) {
    const CellId cell = f.findResizableCell(i * 7);
    if (cell == netlist::kInvalidId) break;
    f.nl.resizeCell(cell, f.biggerVariant(cell));
    inc.onCellResized(cell);
  }
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, VisitsOnlyAFractionOfTheDesign) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  std::int64_t total = 0;
  int updates = 0;
  for (int i = 0; i < 10; ++i) {
    const CellId cell = f.findResizableCell(i * 13);
    if (cell == netlist::kInvalidId) break;
    f.nl.resizeCell(cell, f.biggerVariant(cell));
    inc.onCellResized(cell);
    total += inc.lastUpdateVisited();
    ++updates;
  }
  ASSERT_GT(updates, 0);
  // On a multi-thousand-pin design a single resize should touch well under
  // half the pins on average — that is the whole point of incrementality.
  EXPECT_LT(total / updates, f.nl.numPins() / 2)
      << "average visited " << total / updates << " of " << f.nl.numPins();
}

TEST(IncrementalSta, NoOpResizeVisitsAlmostNothing) {
  Fixture f;
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  // "Resize" to the same type: loads and arcs unchanged, so propagation
  // must die out immediately after the seed pins.
  f.nl.resizeCell(cell, f.nl.cell(cell).type);
  inc.onCellResized(cell);
  EXPECT_LE(inc.lastUpdateVisited(),
            static_cast<std::int64_t>(
                2 * f.nl.cell(cell).inputPins.size() + 1));
}

// -- Randomized multi-edit equivalence ---------------------------------------
//
// The what-if service trusts IncrementalSta to stay bitwise equal to a cold
// StaEngine::run through arbitrary edit streams. These suites replay seeded
// random streams on three suite designs of different styles (control, CPU,
// datapath) so the equivalence claim doesn't overfit one topology.

TEST(IncrementalSta, RandomizedBatchedResizesStayExact) {
  struct Case {
    const char* name;
    float scale;
  };
  for (const Case& c :
       {Case{"or1200", 0.25f}, Case{"arm9", 0.4f}, Case{"sha3", 0.25f}}) {
    Fixture f(c.name, c.scale);
    IncrementalSta inc(f.nl, f.parasitics);
    Rng rng(0x5eedb00cULL ^ static_cast<std::uint64_t>(f.nl.numPins()));
    for (int batch = 0; batch < 4; ++batch) {
      int applied = 0;
      for (int attempt = 0; attempt < 32 && applied < 6; ++attempt) {
        const auto cell = static_cast<CellId>(
            rng.uniformInt(static_cast<std::uint64_t>(f.nl.numCells())));
        const CellTypeId variant = rng.uniform() < 0.5
                                       ? upsizedVariant(f.nl, cell)
                                       : downsizedVariant(f.nl, cell);
        if (variant == netlist::kInvalidCellType) continue;
        f.nl.resizeCell(cell, variant);
        inc.onCellResized(cell);
        ++applied;
      }
      ASSERT_GT(applied, 0) << c.name << " batch " << batch;
      expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
    }
  }
}

TEST(IncrementalSta, RandomizedInterleavedEditsAndQueriesStayExact) {
  Fixture f("or1200", 0.25f);
  IncrementalSta inc(f.nl, f.parasitics);
  const Rect die = f.placement.dieArea;
  Rng rng(0xabcddcbaULL);
  int applied = 0;
  for (int attempt = 0; attempt < 60 && applied < 15; ++attempt) {
    const double kind = rng.uniform();
    if (kind < 0.6) {
      const auto cell = static_cast<CellId>(
          rng.uniformInt(static_cast<std::uint64_t>(f.nl.numCells())));
      const CellTypeId variant = rng.uniform() < 0.5
                                     ? upsizedVariant(f.nl, cell)
                                     : downsizedVariant(f.nl, cell);
      if (variant == netlist::kInvalidCellType) continue;
      f.nl.resizeCell(cell, variant);
      inc.onCellResized(cell);
    } else if (kind < 0.85) {
      const auto cell = static_cast<CellId>(
          rng.uniformInt(static_cast<std::uint64_t>(f.nl.numCells())));
      f.nl.setCellLocation(
          cell, Point{static_cast<float>(rng.uniform(die.lo.x, die.hi.x)),
                      static_cast<float>(rng.uniform(die.lo.y, die.hi.y))});
      const RouteEstimator est(
          f.nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
      inc.onCellMoved(cell, est);
    } else {
      // First net with enough fanout to split, scanning from a random
      // start so successive insertions hit different regions.
      const std::int64_t numNets = f.nl.numNets();
      const std::int64_t start = static_cast<std::int64_t>(
          rng.uniformInt(static_cast<std::uint64_t>(numNets)));
      netlist::NetId rewired = netlist::kInvalidId;
      for (std::int64_t i = 0; i < numNets; ++i) {
        const auto net = static_cast<netlist::NetId>((start + i) % numNets);
        if (insertFanoutBuffer(f.nl, net).inserted) {
          rewired = net;
          break;
        }
      }
      if (rewired == netlist::kInvalidId) continue;
      const RouteEstimator est(
          f.nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
      inc.onStructureChanged({rewired}, est);
    }
    ++applied;
    // A query interleaves with every edit: the incremental view must equal
    // a cold full run on the current netlist with independently
    // re-estimated parasitics — not just at the end of the stream.
    expectIdentical(inc.timing(),
                    StaEngine::run(f.nl, f.freshParasitics()));
  }
  ASSERT_GE(applied, 10);

  // Bookkeeping coherence: every incremental update landed in exactly one
  // histogram bucket.
  const IncrementalStaStats& stats = inc.stats();
  std::uint64_t histTotal = 0;
  for (const std::uint64_t bucket : stats.coneHist) histTotal += bucket;
  EXPECT_EQ(histTotal, stats.incrementalUpdates);
  EXPECT_GT(stats.incrementalUpdates, 0u);
}

TEST(IncrementalSta, RevertToBaselineRestoresBitwiseState) {
  Fixture f("arm9", 0.4f);
  const Netlist baseline = f.nl;
  IncrementalSta inc(f.nl, f.parasitics);
  const TimingResult reference = inc.timing();

  Rng rng(0x4e5e47ULL);
  const Rect die = f.placement.dieArea;
  for (int i = 0; i < 6; ++i) {
    const auto cell = static_cast<CellId>(
        rng.uniformInt(static_cast<std::uint64_t>(f.nl.numCells())));
    const CellTypeId variant = upsizedVariant(f.nl, cell);
    if (variant != netlist::kInvalidCellType) {
      f.nl.resizeCell(cell, variant);
      inc.onCellResized(cell);
    }
    f.nl.setCellLocation(
        cell, Point{static_cast<float>(rng.uniform(die.lo.x, die.hi.x)),
                    static_cast<float>(rng.uniform(die.lo.y, die.hi.y))});
    const RouteEstimator est(
        f.nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
    inc.onCellMoved(cell, est);
  }
  for (netlist::NetId net = 0; net < f.nl.numNets(); ++net) {
    if (insertFanoutBuffer(f.nl, net).inserted) {
      const RouteEstimator est(
          f.nl, nullptr, RouteConfig{WireModel::kPreRouting, 0.0f, 0.0f});
      inc.onStructureChanged({net}, est);
      break;
    }
  }

  // Revert the way WhatIfSession::revert does: restore the baseline
  // netlist and rebuild the engine on it. The rebuilt view must be bitwise
  // identical to the pre-edit reference, not merely close.
  f.nl = baseline;
  IncrementalSta rebuilt(f.nl, f.parasitics);
  expectIdentical(rebuilt.timing(), reference);
  expectIdentical(rebuilt.timing(), StaEngine::run(f.nl, f.parasitics));
}

TEST(IncrementalSta, FullRefreshRestoresReference) {
  Fixture f("arm9", 0.4f);
  IncrementalSta inc(f.nl, f.parasitics);
  const CellId cell = f.findResizableCell();
  ASSERT_NE(cell, netlist::kInvalidId);
  f.nl.resizeCell(cell, f.biggerVariant(cell));
  inc.fullRefresh();
  expectIdentical(inc.timing(), StaEngine::run(f.nl, f.parasitics));
}

}  // namespace
}  // namespace dagt::sta
