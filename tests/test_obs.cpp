// Trace-layer correctness (label `obs`): span nesting and balance across
// threads, ring-buffer wraparound accounting, disabled-mode zero cost
// (asserted via BufferPool stats and registry state), aggregate/profile
// math, and the Chrome trace_event JSON export — including a golden-file
// lock on the exact serialization and a mini JSON parser proving the real
// export is well-formed. The whole binary also runs under ThreadSanitizer
// (tools/verify.sh `obs` stage).

#include <cctype>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "serve/metrics.hpp"
#include "tensor/storage.hpp"

#ifndef DAGT_OBS_GOLDEN_DIR
#error "DAGT_OBS_GOLDEN_DIR must point at tests/golden"
#endif

namespace dagt::obs {
namespace {

/// Registry state is process-global; every test starts from a clean slate
/// with tracing off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRegistry::global().setEnabled(false);
    TraceRegistry::global().reset();
  }
  void TearDown() override { TraceRegistry::global().setEnabled(false); }
};

std::vector<TraceEvent> eventsNamed(const TraceSnapshot& snapshot,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : snapshot.events) {
    if (name == e.name) out.push_back(e);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Mini JSON parser — the repo's JsonValue is write-only by design, so the
// well-formedness check brings its own reader (syntax + structure only).
// ---------------------------------------------------------------------------

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  /// Parses one complete JSON value; true iff the whole input is consumed.
  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

  int objectsSeen() const { return objects_; }
  int arraysSeen() const { return arrays_; }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++objects_;
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++arrays_;
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int objects_ = 0;
  int arrays_ = 0;
};

// ---------------------------------------------------------------------------
// Span nesting / balance
// ---------------------------------------------------------------------------

void nestedWork() {
  DAGT_TRACE_SCOPE("obs_test/outer");
  for (int i = 0; i < 3; ++i) {
    DAGT_TRACE_SCOPE("obs_test/mid");
    DAGT_TRACE_SCOPE("obs_test/inner");
  }
}

TEST_F(ObsTest, SpanNestingAndBalanceAcrossThreads) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.setEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kRepeats = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int r = 0; r < kRepeats; ++r) nestedWork();
    });
  }
  for (auto& thread : threads) thread.join();
  registry.setEnabled(false);

  const TraceSnapshot snapshot = registry.collect();
  EXPECT_EQ(snapshot.dropped, 0u);
  EXPECT_EQ(eventsNamed(snapshot, "obs_test/outer").size(),
            static_cast<std::size_t>(kThreads * kRepeats));
  EXPECT_EQ(eventsNamed(snapshot, "obs_test/mid").size(),
            static_cast<std::size_t>(kThreads * kRepeats * 3));
  EXPECT_EQ(eventsNamed(snapshot, "obs_test/inner").size(),
            static_cast<std::size_t>(kThreads * kRepeats * 3));

  // Per thread: every span closed at the depth it opened (outer 0, mid 1,
  // inner 2) and nested spans sit inside their parent's interval.
  std::map<std::uint32_t, std::vector<TraceEvent>> byTid;
  for (const TraceEvent& e : snapshot.events) {
    ASSERT_EQ(e.kind, EventKind::kSpan);
    byTid[e.tid].push_back(e);
  }
  EXPECT_EQ(byTid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, events] : byTid) {
    std::vector<TraceEvent> open;  // interval stack, parents first
    for (const TraceEvent& e : events) {
      while (!open.empty() &&
             open.back().startNs + open.back().durNs <= e.startNs) {
        open.pop_back();
      }
      EXPECT_EQ(e.depth, static_cast<std::int32_t>(open.size()))
          << e.name << " on tid " << tid;
      if (!open.empty()) {
        const TraceEvent& parent = open.back();
        EXPECT_GE(e.startNs, parent.startNs);
        EXPECT_LE(e.startNs + e.durNs, parent.startNs + parent.durNs)
            << e.name << " escapes its parent " << parent.name;
      }
      open.push_back(e);
    }
  }
}

TEST_F(ObsTest, ConcurrentEmissionAndDrainIsRaceFree) {
  // Emitters keep producing while another thread collects, aggregates and
  // a third toggles the runtime gate — the TSan build of this binary is
  // the actual assertion; the counts only sanity-check liveness.
  TraceRegistry& registry = TraceRegistry::global();
  registry.setEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int t = 0; t < 3; ++t) {
    emitters.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) nestedWork();
    });
  }
  std::thread drainer([&] {
    for (int i = 0; i < 50; ++i) {
      (void)registry.collect();
      (void)registry.aggregate("obs_test/");
    }
  });
  std::thread toggler([&] {
    for (int i = 0; i < 200; ++i) {
      registry.setEnabled(i % 2 == 0);
    }
    registry.setEnabled(true);
  });
  toggler.join();
  drainer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : emitters) thread.join();
  registry.setEnabled(false);

  const auto stats = registry.aggregate("obs_test/");
  ASSERT_FALSE(stats.empty());
  EXPECT_GT(stats[0].count, 0u);
}

TEST_F(ObsTest, SpanOpenedWhileDisabledStaysDisarmed) {
  TraceRegistry& registry = TraceRegistry::global();
  {
    ScopedSpan span("obs_test/disarmed");
    registry.setEnabled(true);  // toggled on while the span is open
  }
  registry.setEnabled(false);
  const TraceSnapshot snapshot = registry.collect();
  EXPECT_TRUE(eventsNamed(snapshot, "obs_test/disarmed").empty());
}

// ---------------------------------------------------------------------------
// Ring wraparound
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RingWraparoundDropsOldestAndKeepsAggregates) {
  TraceRegistry& registry = TraceRegistry::global();
  constexpr std::size_t kCapacity = 64;
  constexpr int kSpans = 200;
  registry.setRingCapacity(kCapacity);
  registry.setEnabled(true);
  // Capacity applies to buffers created after the call — emit from a fresh
  // thread so its ring is the small one.
  std::thread emitter([] {
    for (int i = 0; i < kSpans; ++i) {
      DAGT_TRACE_SCOPE("obs_test/wrap");
    }
  });
  emitter.join();
  registry.setEnabled(false);
  registry.setRingCapacity(TraceRegistry::kDefaultRingCapacity);

  const TraceSnapshot snapshot = registry.collect();
  const auto wrapped = eventsNamed(snapshot, "obs_test/wrap");
  EXPECT_EQ(wrapped.size(), kCapacity);  // ring holds the newest events
  EXPECT_EQ(snapshot.dropped, static_cast<std::uint64_t>(kSpans) - kCapacity);
  // Survivors are the newest and still chronologically ordered.
  for (std::size_t i = 1; i < wrapped.size(); ++i) {
    EXPECT_GE(wrapped[i].startNs, wrapped[i - 1].startNs);
  }
  // The per-name aggregate is wrap-proof: all 200 spans counted.
  const auto stats = registry.aggregate("obs_test/wrap");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].count, static_cast<std::uint64_t>(kSpans));
}

// ---------------------------------------------------------------------------
// Disabled mode: zero allocation, zero recording
// ---------------------------------------------------------------------------

TEST_F(ObsTest, DisabledModeAllocatesNothingAndRecordsNothing) {
  TraceRegistry& registry = TraceRegistry::global();
  ASSERT_FALSE(tracingEnabled());
  const std::size_t threadsBefore = registry.threadCount();
  const std::size_t eventsBefore = registry.collect().events.size();

  tensor::BufferPool::global().resetStats();
  int argEvaluations = 0;
  for (int i = 0; i < 10000; ++i) {
    DAGT_TRACE_SCOPE("obs_test/disabled");
    DAGT_TRACE_INSTANT("obs_test/disabled_instant", "n", ++argEvaluations);
  }
  const tensor::PoolStats pool = tensor::BufferPool::global().stats();

  // No buffer-pool traffic, no heap-backed tensor allocations, no thread
  // buffer registered, no events recorded — and the instant's argument
  // expression was never evaluated.
  EXPECT_EQ(pool.heapAllocs, 0u);
  EXPECT_EQ(pool.poolReuses + pool.workspaceReuses, 0u);
  EXPECT_EQ(registry.threadCount(), threadsBefore);
  EXPECT_EQ(registry.collect().events.size(), eventsBefore);
  EXPECT_EQ(argEvaluations, 0);
}

TEST_F(ObsTest, InstantArgEvaluatedExactlyOnceWhenEnabled) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.setEnabled(true);
  int argEvaluations = 0;
  DAGT_TRACE_INSTANT("obs_test/instant", "n", ++argEvaluations);
  registry.setEnabled(false);
  EXPECT_EQ(argEvaluations, 1);
  const auto found = eventsNamed(registry.collect(), "obs_test/instant");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].kind, EventKind::kInstant);
  EXPECT_STREQ(found[0].argName, "n");
  EXPECT_EQ(found[0].argValue, 1.0);
}

// ---------------------------------------------------------------------------
// Aggregate / profile math
// ---------------------------------------------------------------------------

TraceSnapshot handBuiltSnapshot() {
  // One thread: root [1000, 10000) with children [2000, 5000) and
  // [6000, 8000); a second thread with a lone span; one instant.
  TraceSnapshot snap;
  snap.dropped = 2;
  snap.events.push_back(
      {"cli/predict", 1000, 9000, 0, 0, EventKind::kSpan, nullptr, 0.0});
  snap.events.push_back(
      {"serve/batch", 2000, 3000, 1, 0, EventKind::kSpan, nullptr, 0.0});
  snap.events.push_back(
      {"serve/batch", 6000, 2000, 1, 0, EventKind::kSpan, nullptr, 0.0});
  snap.events.push_back(
      {"serve/forward", 500, 1500, 0, 1, EventKind::kSpan, nullptr, 0.0});
  snap.events.push_back({"pool/heap_alloc", 2500, 0, 2, 0,
                         EventKind::kInstant, "bytes", 4096.0});
  return snap;
}

TEST_F(ObsTest, ProfileRowsComputeSelfTime) {
  const auto rows = profileRows(handBuiltSnapshot());
  std::map<std::string, ProfileRow> byName;
  for (const auto& row : rows) byName[row.name] = row;
  ASSERT_EQ(byName.size(), 3u);  // the instant contributes no profile row
  EXPECT_EQ(byName["cli/predict"].count, 1u);
  EXPECT_DOUBLE_EQ(byName["cli/predict"].totalUs, 9.0);
  EXPECT_DOUBLE_EQ(byName["cli/predict"].selfUs, 4.0);  // 9 - (3 + 2)
  EXPECT_EQ(byName["serve/batch"].count, 2u);
  EXPECT_DOUBLE_EQ(byName["serve/batch"].totalUs, 5.0);
  EXPECT_DOUBLE_EQ(byName["serve/batch"].selfUs, 5.0);
  EXPECT_DOUBLE_EQ(byName["serve/forward"].totalUs, 1.5);
  // Rendered table carries every row and the %wall column.
  const std::string table = renderProfile(rows, /*wallUs=*/10.0);
  EXPECT_NE(table.find("cli/predict"), std::string::npos);
  EXPECT_NE(table.find("%wall"), std::string::npos);
}

TEST_F(ObsTest, SpanCoverageUsesTopLevelSpansOfBestThread) {
  const TraceSnapshot snap = handBuiltSnapshot();
  // Thread 0's depth-0 time is 9000ns; thread 1's is 1500ns.
  EXPECT_DOUBLE_EQ(spanCoverage(snap, 10000), 0.9);
  EXPECT_DOUBLE_EQ(spanCoverage(snap, 9000), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(spanCoverage(snap, 0), 0.0);      // degenerate wall
}

TEST_F(ObsTest, AggregatePrefixFilterAndOrdering) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.setEnabled(true);
  {
    DAGT_TRACE_SCOPE("obs_test/agg_a");
  }
  {
    DAGT_TRACE_SCOPE("obs_test/agg_b");
  }
  {
    DAGT_TRACE_SCOPE("other/agg_c");
  }
  registry.setEnabled(false);
  const auto all = registry.aggregate();
  EXPECT_EQ(all.size(), 3u);
  const auto filtered = registry.aggregate("obs_test/");
  ASSERT_EQ(filtered.size(), 2u);
  for (const auto& s : filtered) {
    EXPECT_EQ(s.name.rfind("obs_test/", 0), 0u) << s.name;
    EXPECT_EQ(s.count, 1u);
  }
  // Sorted by total time descending.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].totalNs, all[i].totalNs);
  }
}

// ---------------------------------------------------------------------------
// Chrome JSON export
// ---------------------------------------------------------------------------

TEST_F(ObsTest, ChromeJsonMatchesGoldenFile) {
  // The golden file ends with the conventional trailing newline; dump()
  // itself emits none.
  const std::string actual =
      chromeTraceJson(handBuiltSnapshot()).dump(2) + "\n";
  const std::string goldenPath =
      std::string(DAGT_OBS_GOLDEN_DIR) + "/chrome_trace.json";
  std::ifstream in(goldenPath, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << goldenPath
                  << "\nexpected contents:\n" << actual;
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "Chrome export changed; update " << goldenPath
      << " after verifying the new output loads in chrome://tracing";
}

TEST_F(ObsTest, RealExportIsWellFormedAndLoadable) {
  TraceRegistry& registry = TraceRegistry::global();
  registry.setEnabled(true);
  std::thread worker([] { nestedWork(); });
  worker.join();
  nestedWork();
  DAGT_TRACE_INSTANT("obs_test/marker", "value", 7);
  registry.setEnabled(false);

  const TraceSnapshot snapshot = registry.collect();
  const std::string text = chromeTraceJson(snapshot).dump(2);
  JsonReader reader(text);
  EXPECT_TRUE(reader.valid()) << text.substr(0, 400);
  // One record object per event, plus the root and the instant's args.
  EXPECT_GE(reader.objectsSeen(),
            static_cast<int>(snapshot.events.size()) + 1);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// ServeMetrics integration
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MetricsSnapshotRendersTraceSpans) {
  serve::MetricsSnapshot snap;
  SpanStats stats;
  stats.name = "serve/forward";
  stats.count = 4;
  stats.totalNs = 8'000'000;  // 8 ms -> mean 2000 us
  snap.traceSpans.push_back(stats);

  const std::string json = snap.toJson().dump(2);
  EXPECT_NE(json.find("\"trace_spans\""), std::string::npos);
  EXPECT_NE(json.find("\"serve/forward\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_us\""), std::string::npos);
  JsonReader reader(json);
  EXPECT_TRUE(reader.valid());

  const std::string table = snap.renderTable();
  EXPECT_NE(table.find("serve/forward"), std::string::npos);

  // Without tracing, the JSON omits the section entirely.
  serve::MetricsSnapshot empty;
  EXPECT_EQ(empty.toJson().dump(2).find("trace_spans"), std::string::npos);
}

}  // namespace
}  // namespace dagt::obs
