#include <gtest/gtest.h>

#include "common/check.hpp"
#include "netlist/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace dagt::netlist {
namespace {

class CellLibraryTest : public ::testing::TestWithParam<TechNode> {};

TEST_P(CellLibraryTest, OffersCoreFunctions) {
  const CellLibrary lib = CellLibrary::makeNode(GetParam());
  for (const CellFunction fn :
       {CellFunction::kInv, CellFunction::kBuf, CellFunction::kNand2,
        CellFunction::kNor2, CellFunction::kAnd2, CellFunction::kOr2,
        CellFunction::kXor2, CellFunction::kMux2, CellFunction::kDff}) {
    EXPECT_TRUE(lib.supports(fn)) << cellFunctionName(fn);
  }
}

TEST_P(CellLibraryTest, DriveVariantsAreAscendingAndFaster) {
  const CellLibrary lib = CellLibrary::makeNode(GetParam());
  const auto& variants = lib.cellsForFunction(CellFunction::kNand2);
  ASSERT_GE(variants.size(), 3u);
  for (std::size_t i = 1; i < variants.size(); ++i) {
    const CellType& smaller = lib.cell(variants[i - 1]);
    const CellType& larger = lib.cell(variants[i]);
    EXPECT_LT(smaller.driveStrength, larger.driveStrength);
    // Bigger drive -> lower resistance, more input cap, more area.
    EXPECT_GT(smaller.driveRes, larger.driveRes);
    EXPECT_LT(smaller.inputCap, larger.inputCap);
    EXPECT_LT(smaller.area, larger.area);
  }
}

TEST_P(CellLibraryTest, SequentialCellsHaveClkToQ) {
  const CellLibrary lib = CellLibrary::makeNode(GetParam());
  const auto& dffs = lib.cellsForFunction(CellFunction::kDff);
  ASSERT_FALSE(dffs.empty());
  for (const CellTypeId id : dffs) {
    EXPECT_TRUE(lib.cell(id).isSequential);
    EXPECT_GT(lib.cell(id).clkToQ, 0.0f);
  }
}

TEST_P(CellLibraryTest, FindCellMatchesDrive) {
  const CellLibrary lib = CellLibrary::makeNode(GetParam());
  const CellTypeId id = lib.findCell(CellFunction::kInv, 2);
  ASSERT_NE(id, kInvalidCellType);
  EXPECT_EQ(lib.cell(id).driveStrength, 2);
  EXPECT_EQ(lib.cell(id).function, CellFunction::kInv);
  EXPECT_EQ(lib.findCell(CellFunction::kInv, 3), kInvalidCellType);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, CellLibraryTest,
                         ::testing::Values(TechNode::k130nm, TechNode::k7nm,
                                           TechNode::k45nm),
                         [](const auto& info) {
                           return techNodeName(info.param);
                         });

TEST(CellLibrary, NodeScaleGapIsAboutAnOrderOfMagnitude) {
  const CellLibrary mature = CellLibrary::makeNode(TechNode::k130nm);
  const CellLibrary advanced = CellLibrary::makeNode(TechNode::k7nm);
  const CellType& inv130 = mature.cell(mature.findCell(CellFunction::kInv, 1));
  const CellType& inv7 = advanced.cell(advanced.findCell(CellFunction::kInv, 1));
  EXPECT_GT(inv130.intrinsicDelay / inv7.intrinsicDelay, 5.0f);
  EXPECT_LT(inv130.intrinsicDelay / inv7.intrinsicDelay, 20.0f);
  EXPECT_GT(inv130.inputCap / inv7.inputCap, 3.0f);
}

TEST(CellLibrary, AdvancedNodeLacksComplexGates) {
  const CellLibrary advanced = CellLibrary::makeNode(TechNode::k7nm);
  EXPECT_FALSE(advanced.supports(CellFunction::kNand3));
  EXPECT_FALSE(advanced.supports(CellFunction::kMaj3));
  EXPECT_FALSE(advanced.supports(CellFunction::kAoi21));
  const CellLibrary mature = CellLibrary::makeNode(TechNode::k130nm);
  EXPECT_TRUE(mature.supports(CellFunction::kNand3));
  EXPECT_TRUE(mature.supports(CellFunction::kMaj3));
}

TEST(CellLibrary, IntermediateNodeSitsBetweenTheOthers) {
  const CellLibrary n130 = CellLibrary::makeNode(TechNode::k130nm);
  const CellLibrary n45 = CellLibrary::makeNode(TechNode::k45nm);
  const CellLibrary n7 = CellLibrary::makeNode(TechNode::k7nm);
  const auto invDelay = [](const CellLibrary& lib) {
    return lib.cell(lib.findCell(CellFunction::kInv, 1)).intrinsicDelay;
  };
  EXPECT_GT(invDelay(n130), invDelay(n45));
  EXPECT_GT(invDelay(n45), invDelay(n7));
  // 45nm keeps NAND3 but drops MAJ3 — between the other menus.
  EXPECT_TRUE(n45.supports(CellFunction::kNand3));
  EXPECT_FALSE(n45.supports(CellFunction::kMaj3));
}

TEST(GateTypeVocabulary, SubsetVocabularyRejectsAbsentNode) {
  const CellLibrary lib130 = CellLibrary::makeNode(TechNode::k130nm);
  const CellLibrary lib7 = CellLibrary::makeNode(TechNode::k7nm);
  const GateTypeVocabulary vocab({&lib130, &lib7});
  EXPECT_TRUE(vocab.hasNode(TechNode::k130nm));
  EXPECT_FALSE(vocab.hasNode(TechNode::k45nm));
  EXPECT_THROW(vocab.indexOf(TechNode::k45nm, 0), CheckError);
}

TEST(GateTypeVocabulary, ThreeNodeVocabularyIsDisjoint) {
  const CellLibrary lib130 = CellLibrary::makeNode(TechNode::k130nm);
  const CellLibrary lib7 = CellLibrary::makeNode(TechNode::k7nm);
  const CellLibrary lib45 = CellLibrary::makeNode(TechNode::k45nm);
  const GateTypeVocabulary vocab({&lib130, &lib7, &lib45});
  EXPECT_EQ(vocab.size(),
            lib130.numCells() + lib7.numCells() + lib45.numCells() + 2);
  std::set<int> slots;
  for (netlist::CellTypeId c = 0; c < lib130.numCells(); ++c) {
    EXPECT_TRUE(slots.insert(vocab.indexOf(TechNode::k130nm, c)).second);
  }
  for (netlist::CellTypeId c = 0; c < lib7.numCells(); ++c) {
    EXPECT_TRUE(slots.insert(vocab.indexOf(TechNode::k7nm, c)).second);
  }
  for (netlist::CellTypeId c = 0; c < lib45.numCells(); ++c) {
    EXPECT_TRUE(slots.insert(vocab.indexOf(TechNode::k45nm, c)).second);
  }
}

TEST(GateTypeVocabulary, MergesBothNodesPlusPorts) {
  const CellLibrary lib130 = CellLibrary::makeNode(TechNode::k130nm);
  const CellLibrary lib7 = CellLibrary::makeNode(TechNode::k7nm);
  const GateTypeVocabulary vocab({&lib130, &lib7});
  EXPECT_EQ(vocab.size(), lib130.numCells() + lib7.numCells() + 2);
  // Slots for the two nodes must not collide.
  EXPECT_NE(vocab.indexOf(TechNode::k130nm, 0), vocab.indexOf(TechNode::k7nm, 0));
  EXPECT_EQ(vocab.indexOf(TechNode::k7nm, 0), lib130.numCells());
  EXPECT_EQ(vocab.primaryInputIndex(), vocab.size() - 2);
  EXPECT_THROW(vocab.indexOf(TechNode::k7nm, lib7.numCells()), CheckError);
}

/// Hand-built 2-gate netlist: PI -> INV -> NAND2 -> PO, with a DFF.
struct TinyNetlist {
  CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  Netlist nl{&lib, "tiny"};
  PinId pi1, pi2, po;
  CellId inv, nand, dff;

  TinyNetlist() {
    pi1 = nl.addPrimaryInput();
    pi2 = nl.addPrimaryInput();
    inv = nl.addCell(lib.findCell(CellFunction::kInv, 1));
    nand = nl.addCell(lib.findCell(CellFunction::kNand2, 1));
    dff = nl.addCell(lib.findCell(CellFunction::kDff, 1));
    po = nl.addPrimaryOutput();

    const NetId n1 = nl.addNet(pi1);
    nl.connectSink(n1, nl.cell(inv).inputPins[0]);
    const NetId n2 = nl.addNet(nl.cell(inv).outputPin);
    nl.connectSink(n2, nl.cell(nand).inputPins[0]);
    const NetId n3 = nl.addNet(pi2);
    nl.connectSink(n3, nl.cell(nand).inputPins[1]);
    const NetId n4 = nl.addNet(nl.cell(nand).outputPin);
    nl.connectSink(n4, nl.cell(dff).inputPins[0]);
    const NetId n5 = nl.addNet(nl.cell(dff).outputPin);
    nl.connectSink(n5, po);
  }
};

TEST(Netlist, TinyConstructionIsValid) {
  TinyNetlist t;
  EXPECT_NO_THROW(t.nl.validate());
  EXPECT_EQ(t.nl.numCells(), 3);
  EXPECT_EQ(t.nl.numNets(), 5);
  // Pins: 2 PI + 1 PO + inv(2) + nand(3) + dff(2) = 10.
  EXPECT_EQ(t.nl.numPins(), 10);
}

TEST(Netlist, EndpointsAreDffDAndPrimaryOutputs) {
  TinyNetlist t;
  const auto endpoints = t.nl.endpoints();
  ASSERT_EQ(endpoints.size(), 2u);  // PO + DFF D pin
  const auto startpoints = t.nl.startpoints();
  ASSERT_EQ(startpoints.size(), 3u);  // 2 PIs + DFF Q
}

TEST(Netlist, StatsMatchHandCount) {
  TinyNetlist t;
  const auto s = t.nl.stats();
  EXPECT_EQ(s.numPins, 10);
  EXPECT_EQ(s.numEndpoints, 2);
  EXPECT_EQ(s.numNetEdges, 5);   // each net has exactly one sink
  EXPECT_EQ(s.numCellEdges, 3);  // inv 1 + nand 2; DFF excluded
}

TEST(Netlist, TopologicalOrderRespectsDependencies) {
  TinyNetlist t;
  const auto order = t.nl.topologicalPinOrder();
  ASSERT_EQ(order.size(), 10u);
  std::vector<std::int64_t> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<std::int64_t>(i);
  }
  for (PinId p = 0; p < t.nl.numPins(); ++p) {
    for (const PinId f : t.nl.timingFanin(p)) {
      EXPECT_LT(position[static_cast<std::size_t>(f)],
                position[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(Netlist, ResizePreservesFunctionAndRejectsOthers) {
  TinyNetlist t;
  const CellTypeId inv2 = t.lib.findCell(CellFunction::kInv, 2);
  t.nl.resizeCell(t.inv, inv2);
  EXPECT_EQ(t.nl.cell(t.inv).type, inv2);
  const CellTypeId nand2 = t.lib.findCell(CellFunction::kNand2, 2);
  EXPECT_THROW(t.nl.resizeCell(t.inv, nand2), CheckError);
}

TEST(Netlist, MoveSinkRewires) {
  TinyNetlist t;
  // Move the PO from the DFF's Q net onto the NAND output net.
  const NetId nandNet = t.nl.pin(t.nl.cell(t.nand).outputPin).net;
  t.nl.moveSink(t.po, nandNet);
  EXPECT_EQ(t.nl.pin(t.po).net, nandNet);
  EXPECT_EQ(t.nl.net(nandNet).sinks.size(), 2u);
  // The DFF Q net lost its only sink -> validate should now fail.
  EXPECT_THROW(t.nl.validate(), CheckError);
}

TEST(Netlist, DoubleConnectThrows) {
  TinyNetlist t;
  const NetId n1 = t.nl.pin(t.pi1).net;
  EXPECT_THROW(t.nl.connectSink(n1, t.nl.cell(t.inv).inputPins[0]),
               CheckError);
}

TEST(Netlist, PinLocationFollowsCellAndPort) {
  TinyNetlist t;
  t.nl.setCellLocation(t.inv, {3.0f, 4.0f});
  const PinId invOut = t.nl.cell(t.inv).outputPin;
  EXPECT_FLOAT_EQ(t.nl.pinLocation(invOut).x, 3.0f);
  t.nl.setPortLocation(t.pi1, {0.0f, 9.0f});
  EXPECT_FLOAT_EQ(t.nl.pinLocation(t.pi1).y, 9.0f);
  EXPECT_THROW(t.nl.setPortLocation(invOut, {1.0f, 1.0f}), CheckError);
}

}  // namespace
}  // namespace dagt::netlist
