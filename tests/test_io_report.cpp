#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "designgen/design_suite.hpp"
#include "netlist/io.hpp"
#include "place/placer.hpp"
#include "sta/sta_engine.hpp"
#include "sta/timing_report.hpp"

namespace dagt {
namespace {

using netlist::CellLibrary;
using netlist::Netlist;
using netlist::TechNode;

Netlist buildPlacedDesign(const CellLibrary& lib, const char* name = "arm9",
                          float scale = 0.3f) {
  const designgen::DesignSuite suite(scale);
  Netlist nl = suite.buildNetlist(suite.entry(name), lib);
  place::Placer::place(nl);
  return nl;
}

// ---------------------------------------------------------------------------
// Library I/O
// ---------------------------------------------------------------------------

class LibraryIoTest : public ::testing::TestWithParam<TechNode> {};

TEST_P(LibraryIoTest, RoundTripPreservesEverything) {
  const CellLibrary original = CellLibrary::makeNode(GetParam());
  std::stringstream buffer;
  netlist::io::writeLibrary(original, buffer);
  const CellLibrary loaded = netlist::io::readLibrary(buffer);

  EXPECT_EQ(loaded.node(), original.node());
  EXPECT_EQ(loaded.numCells(), original.numCells());
  EXPECT_FLOAT_EQ(loaded.unitWireRes(), original.unitWireRes());
  EXPECT_FLOAT_EQ(loaded.unitWireCap(), original.unitWireCap());
  EXPECT_FLOAT_EQ(loaded.sitePitch(), original.sitePitch());
  EXPECT_FLOAT_EQ(loaded.defaultInputSlew(), original.defaultInputSlew());
  for (netlist::CellTypeId id = 0; id < original.numCells(); ++id) {
    const auto& a = original.cell(id);
    const auto& b = loaded.cell(id);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.function, b.function);
    EXPECT_EQ(a.numInputs, b.numInputs);
    EXPECT_EQ(a.driveStrength, b.driveStrength);
    EXPECT_FLOAT_EQ(a.inputCap, b.inputCap);
    EXPECT_FLOAT_EQ(a.driveRes, b.driveRes);
    EXPECT_FLOAT_EQ(a.intrinsicDelay, b.intrinsicDelay);
    EXPECT_EQ(a.isSequential, b.isSequential);
    EXPECT_FLOAT_EQ(a.clkToQ, b.clkToQ);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, LibraryIoTest,
                         ::testing::Values(TechNode::k130nm, TechNode::k7nm,
                                           TechNode::k45nm),
                         [](const auto& info) {
                           return netlist::techNodeName(info.param);
                         });

TEST(LibraryIo, RejectsGarbage) {
  std::stringstream bad("not a library\n");
  EXPECT_THROW(netlist::io::readLibrary(bad), CheckError);
}

TEST(LibraryIo, FindCellByName) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const auto id = lib.findCellByName("NAND2_X2");
  ASSERT_NE(id, netlist::kInvalidCellType);
  EXPECT_EQ(lib.cell(id).driveStrength, 2);
  EXPECT_EQ(lib.findCellByName("NOPE_X9"), netlist::kInvalidCellType);
}

// ---------------------------------------------------------------------------
// Netlist I/O
// ---------------------------------------------------------------------------

TEST(NetlistIo, RoundTripPreservesStructureAndPlacement) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const Netlist original = buildPlacedDesign(lib);
  std::stringstream buffer;
  netlist::io::writeNetlist(original, buffer);
  const Netlist loaded = netlist::io::readNetlist(buffer, lib);

  EXPECT_EQ(loaded.name(), original.name());
  ASSERT_EQ(loaded.numPins(), original.numPins());
  ASSERT_EQ(loaded.numCells(), original.numCells());
  ASSERT_EQ(loaded.numNets(), original.numNets());
  EXPECT_NO_THROW(loaded.validate());

  for (netlist::PinId p = 0; p < original.numPins(); ++p) {
    EXPECT_EQ(loaded.pin(p).kind, original.pin(p).kind) << "pin " << p;
    EXPECT_EQ(loaded.pin(p).net, original.pin(p).net) << "pin " << p;
    EXPECT_EQ(loaded.pin(p).cell, original.pin(p).cell) << "pin " << p;
    EXPECT_FLOAT_EQ(loaded.pinLocation(p).x, original.pinLocation(p).x);
    EXPECT_FLOAT_EQ(loaded.pinLocation(p).y, original.pinLocation(p).y);
  }
  for (netlist::CellId c = 0; c < original.numCells(); ++c) {
    EXPECT_EQ(loaded.cell(c).type, original.cell(c).type) << "cell " << c;
  }
  const auto sa = original.stats();
  const auto sb = loaded.stats();
  EXPECT_EQ(sa.numNetEdges, sb.numNetEdges);
  EXPECT_EQ(sa.numCellEdges, sb.numCellEdges);
  EXPECT_EQ(sa.numEndpoints, sb.numEndpoints);
}

TEST(NetlistIo, RoundTripPreservesTiming) {
  // The strongest equivalence check: STA on the reloaded netlist matches.
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k130nm);
  const Netlist original = buildPlacedDesign(lib, "linkruncca");
  std::stringstream buffer;
  netlist::io::writeNetlist(original, buffer);
  const Netlist loaded = netlist::io::readNetlist(buffer, lib);

  const sta::RouteConfig route{sta::WireModel::kPreRouting, 0.0f, 0.0f};
  const auto ta = sta::StaEngine::run(original, nullptr, route);
  const auto tb = sta::StaEngine::run(loaded, nullptr, route);
  ASSERT_EQ(ta.arrival.size(), tb.arrival.size());
  for (std::size_t i = 0; i < ta.arrival.size(); ++i) {
    EXPECT_NEAR(ta.arrival[i], tb.arrival[i],
                1e-3f * std::max(1.0f, ta.arrival[i]));
  }
}

TEST(NetlistIo, ReaderChecksLibraryNode) {
  const CellLibrary lib7 = CellLibrary::makeNode(TechNode::k7nm);
  const CellLibrary lib130 = CellLibrary::makeNode(TechNode::k130nm);
  const Netlist original = buildPlacedDesign(lib7);
  std::stringstream buffer;
  netlist::io::writeNetlist(original, buffer);
  EXPECT_THROW(netlist::io::readNetlist(buffer, lib130), CheckError);
}

// ---------------------------------------------------------------------------
// Slack / critical path
// ---------------------------------------------------------------------------

TEST(TimingReport, SlackSignsFollowConstraint) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const Netlist nl = buildPlacedDesign(lib);
  const auto timing = sta::StaEngine::run(
      nl, nullptr, sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});

  // Generous clock: everything meets timing.
  sta::TimingConstraints loose;
  loose.clockPeriod = timing.worstArrival * 2.0f;
  const auto ok = sta::computeSlack(nl, timing, loose);
  EXPECT_EQ(ok.violatingEndpoints, 0);
  EXPECT_FLOAT_EQ(ok.worstNegativeSlack, 0.0f);

  // Near-impossible clock: (almost) everything fails — a PO wired directly
  // next to a port can have sub-0.1ps arrival, so allow a one-off.
  sta::TimingConstraints tight;
  tight.clockPeriod = 0.1f;
  const auto bad = sta::computeSlack(nl, timing, tight);
  EXPECT_GE(bad.violatingEndpoints,
            static_cast<std::int64_t>(bad.endpoints.size()) - 1);
  EXPECT_LT(bad.worstNegativeSlack, 0.0f);
  EXPECT_LT(bad.totalNegativeSlack, bad.worstNegativeSlack);
}

TEST(TimingReport, SlackMatchesArrivalArithmetic) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const Netlist nl = buildPlacedDesign(lib);
  const auto timing = sta::StaEngine::run(
      nl, nullptr, sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  const auto constraints =
      sta::TimingConstraints::fromEstimate(timing.worstArrival);
  const auto report = sta::computeSlack(nl, timing, constraints);
  for (std::size_t i = 0; i < report.endpoints.size(); ++i) {
    const auto e = report.endpoints[i];
    const float required =
        nl.pin(e).kind == netlist::PinKind::kPrimaryOutput
            ? constraints.clockPeriod - constraints.outputDelay
            : constraints.clockPeriod - constraints.setupTime;
    EXPECT_FLOAT_EQ(report.slack[i],
                    required - timing.arrival[static_cast<std::size_t>(e)]);
  }
}

TEST(TimingReport, CriticalPathIsConsistent) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const Netlist nl = buildPlacedDesign(lib, "or1200", 0.3f);
  const auto timing = sta::StaEngine::run(
      nl, nullptr, sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  const auto path = sta::traceCriticalPath(nl, timing);
  ASSERT_GE(path.size(), 2u);
  // Ends at the worst endpoint.
  EXPECT_FLOAT_EQ(path.back().arrival, timing.worstArrival);
  // Arrivals are non-decreasing and increments reconstruct them.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_GE(path[i].arrival + 1e-3f, path[i - 1].arrival);
    EXPECT_NEAR(path[i].arrival,
                path[i - 1].arrival + path[i].incrementalDelay,
                1e-2f * std::max(1.0f, path[i].arrival));
  }
  // Starts at a startpoint (no timing fanin).
  EXPECT_TRUE(nl.timingFanin(path.front().pin).empty());
  // The report formats without blowing up.
  const std::string report = sta::formatPathReport(nl, path);
  EXPECT_NE(report.find("critical path"), std::string::npos);
}

TEST(TimingReport, TraceSpecificEndpoint) {
  const CellLibrary lib = CellLibrary::makeNode(TechNode::k7nm);
  const Netlist nl = buildPlacedDesign(lib);
  const auto timing = sta::StaEngine::run(
      nl, nullptr, sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  const auto endpoint = nl.endpoints().front();
  const auto path = sta::traceCriticalPath(nl, timing, endpoint);
  EXPECT_EQ(path.back().pin, endpoint);
}

}  // namespace
}  // namespace dagt
