// Expression-compiler suite: proves the fusion layer honors the parity
// contract documented in src/tensor/expr.hpp.
//
//   * Every fusion pattern (elementwise chains, GEMM epilogues, row-dot
//     reductions) replays bitwise identical to the eager op chain at the
//     scalar and avx2 tiers, and within a tight relative tolerance at
//     avx2fma (where only the GEMM rounding contract differs).
//   * Fusion actually fires: compiled programs carry the composite node the
//     pattern lowers to, and fewer live nodes than the eager tape.
//   * Training is untouched: with gradients enabled nothing records, and a
//     finite-difference gradcheck passes with fusion globally enabled.
//   * ProgramCache keys on the shape/weight signature and invalidates when
//     either changes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tensor/expr.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace dagt::tensor {
namespace {

using kernels::Tier;

std::vector<Tier> supportedTiers() {
  std::vector<Tier> tiers;
  for (int t = 0; t < kernels::kTierCount; ++t) {
    const Tier tier = static_cast<Tier>(t);
    if (kernels::tierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

class TierGuard {
 public:
  explicit TierGuard(Tier tier) { kernels::forceTier(tier); }
  ~TierGuard() { kernels::resetTier(); }
};

/// Restore the global fusion switch on scope exit (tests flip it).
class FusionGuard {
 public:
  FusionGuard() : saved_(expr::fusionEnabled()) {}
  ~FusionGuard() { expr::setFusionEnabled(saved_); }

 private:
  bool saved_;
};

/// A pattern body: maps (lazy or real) inputs to outputs using tensor ops.
using BodyFn =
    std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;

std::shared_ptr<const expr::FusedProgram> compileBody(
    const BodyFn& body, const std::vector<Tensor>& inputs) {
  NoGradGuard noGrad;
  expr::Capture cap;
  std::vector<Tensor> lazy;
  lazy.reserve(inputs.size());
  for (const Tensor& t : inputs) lazy.push_back(cap.input(t));
  const std::vector<Tensor> outs = body(lazy);
  std::vector<const Tensor*> ptrs;
  ptrs.reserve(outs.size());
  for (const Tensor& o : outs) ptrs.push_back(&o);
  return cap.compile(ptrs);
}

void expectBitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  EXPECT_EQ(
      std::memcmp(a.data(), b.data(),
                  static_cast<std::size_t>(a.numel()) * sizeof(float)),
      0)
      << what;
}

void expectClose(const Tensor& a, const Tensor& b, const char* what,
                 float relTol = 2e-5f) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    const float x = a.data()[i];
    const float y = b.data()[i];
    const float scale = std::max({1.0f, std::abs(x), std::abs(y)});
    EXPECT_NEAR(x, y, relTol * scale) << what << " element " << i;
  }
}

/// Compile `body` once per tier, replay it, and compare against the eager
/// run at the same tier. `exactAtFma` is true for elementwise-only bodies
/// (fusedEwRows is bitwise in every tier); GEMM-bearing bodies compare
/// within tolerance at avx2fma, bitwise elsewhere.
void checkParity(const BodyFn& body, const std::vector<Tensor>& inputs,
                 bool exactAtFma,
                 const std::function<void(const expr::FusedProgram&)>&
                     inspect = nullptr) {
  for (const Tier tier : supportedTiers()) {
    SCOPED_TRACE(kernels::tierName(tier));
    TierGuard guard(tier);
    const auto program = compileBody(body, inputs);
    if (inspect) inspect(*program);
    NoGradGuard noGrad;
    const std::vector<Tensor> eager = body(inputs);
    const std::vector<Tensor> fused = program->run(inputs);
    ASSERT_EQ(eager.size(), fused.size());
    const bool exact = exactAtFma || tier != Tier::kAvx2Fma;
    for (std::size_t i = 0; i < eager.size(); ++i) {
      if (exact) {
        expectBitwise(eager[i], fused[i], "output");
      } else {
        expectClose(eager[i], fused[i], "output");
      }
    }
  }
}

TEST(ExprGating, ShouldFuseRequiresInferenceAndEnable) {
  FusionGuard restore;
  expr::setFusionEnabled(true);
  EXPECT_FALSE(expr::shouldFuse()) << "gradients are on by default";
  {
    NoGradGuard noGrad;
    EXPECT_TRUE(expr::shouldFuse());
    expr::setFusionEnabled(false);
    EXPECT_FALSE(expr::shouldFuse()) << "DAGT_FUSION=0 must win";
    expr::setFusionEnabled(true);
    // A module compiled inside another module's capture must record into
    // the outer graph instead of nesting a program.
    expr::Capture cap;
    EXPECT_FALSE(expr::shouldFuse()) << "no nesting under an active capture";
  }
}

TEST(ExprParity, ElementwiseChainsBitwiseEveryTier) {
  Rng rng(11);
  const Tensor x = Tensor::randn({13, 37}, rng);
  const Tensor y = Tensor::randn({13, 37}, rng);

  const auto fusedEwFired = [](const expr::FusedProgram& p) {
    EXPECT_GE(p.countKind(expr::OpKind::kFusedEw), 1);
  };

  // Scalar/unary chain (all-kFull operands: exercises the flattened
  // one-row replay path).
  checkParity(
      [](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{
            relu(addScalar(mulScalar(in[0], 1.7f), -0.25f))};
      },
      {x}, /*exactAtFma=*/true, fusedEwFired);

  // Binary + transcendental chains.
  checkParity(
      [](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{sigmoid(add(in[0], in[1])),
                                   tanhOp(mul(in[0], in[1]))};
      },
      {x, y}, true, fusedEwFired);

  // Non-commutative ops with the chain on the right (rsub/rdiv steps).
  checkParity(
      [](const std::vector<Tensor>& in) {
        const Tensor chain = expOp(mulScalar(in[0], 0.5f));
        return std::vector<Tensor>{sub(in[1], chain),
                                   div(in[1], softplus(in[0]))};
      },
      {x, y}, true, fusedEwFired);

  // Same tensor on both sides (x + x, then square / powInt / log / sqrt).
  checkParity(
      [](const std::vector<Tensor>& in) {
        const Tensor doubled = add(in[0], in[0]);
        return std::vector<Tensor>{logOp(addScalar(square(doubled), 1.0f)),
                                   sqrtOp(addScalar(powInt(in[0], 3), 9.0f))};
      },
      {x}, true, fusedEwFired);
}

TEST(ExprParity, BroadcastChainsBitwiseEveryTier) {
  Rng rng(12);
  const Tensor x = Tensor::randn({9, 24}, rng);
  const Tensor y = Tensor::randn({9, 24}, rng);
  const Tensor row = Tensor::randn({24}, rng);
  const Tensor col = Tensor::randn({9}, rng);

  const auto fusedEwFired = [](const expr::FusedProgram& p) {
    EXPECT_GE(p.countKind(expr::OpKind::kFusedEw), 1);
  };

  // Row-vector broadcast inside a chain (kRowVec operand).
  checkParity(
      [&](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{relu(addBias(mul(in[0], in[1]), in[2]))};
      },
      {x, y, row}, true, fusedEwFired);

  // Column-vector broadcasts (kColVec operands).
  checkParity(
      [&](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{
            sigmoid(mulColVec(add(in[0], in[1]), in[2])),
            leakyRelu(addColVec(in[0], in[2]), 0.1f)};
      },
      {x, y, col}, true, fusedEwFired);

  // repeatRows feeding a chain folds into a row-vector operand.
  const Tensor row2d = reshape(row, {1, 24});
  checkParity(
      [&](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{
            relu(add(repeatRows(in[1], in[0].dim(0)), in[0]))};
      },
      {x, row2d}, true, fusedEwFired);
}

TEST(ExprParity, GemmEpiloguePatterns) {
  Rng rng(13);
  const Tensor a = Tensor::randn({17, 29}, rng);
  const Tensor b = Tensor::randn({29, 21}, rng);
  const Tensor bias = Tensor::randn({21}, rng);
  const Tensor res = Tensor::randn({17, 21}, rng);

  const auto fusedGemmFired = [](const expr::FusedProgram& p) {
    EXPECT_EQ(p.countKind(expr::OpKind::kFusedGemm), 1);
    EXPECT_EQ(p.countKind(expr::OpKind::kMatmul), 0);
  };

  const std::vector<Tensor> inputs{a, b, bias, res};
  using Body = std::function<Tensor(const std::vector<Tensor>&)>;
  const std::vector<std::pair<const char*, Body>> patterns{
      {"bias", [](const std::vector<Tensor>& in) {
         return addBias(matmul(in[0], in[1]), in[2]);
       }},
      {"bias+relu", [](const std::vector<Tensor>& in) {
         return relu(addBias(matmul(in[0], in[1]), in[2]));
       }},
      {"bias+tanh", [](const std::vector<Tensor>& in) {
         return tanhOp(addBias(matmul(in[0], in[1]), in[2]));
       }},
      {"bias+sigmoid", [](const std::vector<Tensor>& in) {
         return sigmoid(addBias(matmul(in[0], in[1]), in[2]));
       }},
      {"bias+leaky", [](const std::vector<Tensor>& in) {
         return leakyRelu(addBias(matmul(in[0], in[1]), in[2]), 0.2f);
       }},
      {"relu-no-bias", [](const std::vector<Tensor>& in) {
         return relu(matmul(in[0], in[1]));
       }},
      {"bias+relu+residual-right", [](const std::vector<Tensor>& in) {
         return add(relu(addBias(matmul(in[0], in[1]), in[2])), in[3]);
       }},
      {"bias+relu+residual-left", [](const std::vector<Tensor>& in) {
         return add(in[3], relu(addBias(matmul(in[0], in[1]), in[2])));
       }},
  };
  for (const auto& [name, pattern] : patterns) {
    SCOPED_TRACE(name);
    checkParity(
        [&pattern](const std::vector<Tensor>& in) {
          return std::vector<Tensor>{pattern(in)};
        },
        inputs, /*exactAtFma=*/false, fusedGemmFired);
  }
}

TEST(ExprParity, RowDotReduction) {
  Rng rng(14);
  const Tensor a = Tensor::randn({19, 33}, rng);
  const Tensor b = Tensor::randn({19, 33}, rng);

  const auto rowDotFired = [](const expr::FusedProgram& p) {
    EXPECT_GE(p.countKind(expr::OpKind::kRowDot), 1);
    EXPECT_EQ(p.countKind(expr::OpKind::kSumDim1), 0);
  };

  checkParity(
      [](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{sumDim1(mul(in[0], in[1])),
                                   sumDim1(mul(in[0], in[0]))};
      },
      {a, b}, /*exactAtFma=*/false, rowDotFired);
}

TEST(ExprParity, MultiOutputProgramSharesIntermediates) {
  Rng rng(15);
  const Tensor x = Tensor::randn({8, 16}, rng);
  const Tensor w = Tensor::randn({16, 16}, rng);
  const Tensor bias = Tensor::randn({16}, rng);
  checkParity(
      [](const std::vector<Tensor>& in) {
        const Tensor h = addBias(matmul(in[0], in[1]), in[2]);
        return std::vector<Tensor>{relu(h), tanhOp(h), h};
      },
      {x, w, bias}, /*exactAtFma=*/false,
      [](const expr::FusedProgram& p) { EXPECT_EQ(p.numOutputs(), 3); });
}

TEST(ExprReplay, RepeatedRunsAreBitwiseStable) {
  Rng rng(16);
  const Tensor x = Tensor::randn({6, 48}, rng);
  const Tensor w = Tensor::randn({48, 32}, rng);
  const Tensor bias = Tensor::randn({32}, rng);
  const BodyFn body = [](const std::vector<Tensor>& in) {
    return std::vector<Tensor>{
        sigmoid(addBias(matmul(in[0], in[1]), in[2]))};
  };
  const auto program = compileBody(body, {x, w, bias});
  NoGradGuard noGrad;
  expr::resetStats();
  const Tensor first = program->runOne({x, w, bias});
  const Tensor second = program->runOne({x, w, bias});
  expectBitwise(first, second, "replay determinism");
  const expr::FusionStats s = expr::stats();
  EXPECT_EQ(s.programReplays, 2u);
  EXPECT_GE(s.fusedGemmLaunches, 2u);
}

TEST(ExprStats, CompileAndLaunchCountersAdvance) {
  Rng rng(17);
  const Tensor x = Tensor::randn({5, 40}, rng);
  expr::resetStats();
  const auto program = compileBody(
      [](const std::vector<Tensor>& in) {
        return std::vector<Tensor>{relu(addScalar(in[0], 0.5f))};
      },
      {x});
  NoGradGuard noGrad;
  (void)program->runOne({x});
  const expr::FusionStats s = expr::stats();
  EXPECT_GE(s.programsCompiled, 1u);
  EXPECT_EQ(s.programReplays, 1u);
  EXPECT_GE(s.fusedEwLaunches, 1u);
}

TEST(ExprTraining, GradModeNeverCapturesAndGradcheckPasses) {
  FusionGuard restore;
  expr::setFusionEnabled(true);
  Rng rng(18);
  Tensor x = Tensor::randn({4, 6}, rng, /*stddev=*/1.0f,
                           /*requiresGrad=*/true);
  const Tensor w = Tensor::randn({6, 5}, rng);
  const Tensor bias = Tensor::randn({5}, rng);

  const auto lossFn = [&] {
    return sumAll(relu(addBias(matmul(x, w), bias)));
  };

  expr::resetStats();
  // Forward + backward with gradients on: the tape path, not the compiler.
  x.zeroGrad();
  Tensor loss = lossFn();
  loss.backward();
  ASSERT_TRUE(x.grad().defined());
  const expr::FusionStats s = expr::stats();
  EXPECT_EQ(s.programsCompiled, 0u) << "training must not compile programs";
  EXPECT_EQ(s.programReplays, 0u);

  // Finite-difference check against the analytic gradient.
  const Tensor analytic = x.grad();
  float* p = x.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float saved = p[i];
    const float eps = 1e-3f;
    p[i] = saved + eps;
    const float up = lossFn().item();
    p[i] = saved - eps;
    const float down = lossFn().item();
    p[i] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    const float got = analytic.data()[i];
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(got)});
    EXPECT_NEAR(got, numeric, 2e-2f * scale) << "element " << i;
  }
}

TEST(ExprCache, MissCompilesOnceThenHits) {
  Rng rng(19);
  const Tensor x = Tensor::randn({3, 10}, rng);
  expr::ProgramCache cache;
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return compileBody(
        [](const std::vector<Tensor>& in) {
          return std::vector<Tensor>{relu(in[0])};
        },
        {x});
  };
  const auto p1 = cache.getOrCompile(42, build);
  const auto p2 = cache.getOrCompile(42, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p1.get(), p2.get());
  (void)cache.getOrCompile(43, build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)cache.getOrCompile(42, build);
  EXPECT_EQ(builds, 3);
}

TEST(ExprCache, SignatureChangesWithShapeAndWeightRebind) {
  Rng rng(20);
  const Tensor w1 = Tensor::randn({4, 4}, rng);
  const Tensor w2 = Tensor::randn({4, 4}, rng);

  const auto sigFor = [](const Shape& inShape, const Tensor& weight) {
    expr::SigHash sig;
    sig.mixShape(inShape);
    sig.mixTensor(weight);
    return sig.h;
  };

  // A new input shape is a new program.
  EXPECT_NE(sigFor({2, 4}, w1), sigFor({3, 4}, w1));
  // Rebinding the weight storage (same shape, different buffer) is a new
  // program: the compiled kConst nodes alias the old storage.
  EXPECT_NE(sigFor({2, 4}, w1), sigFor({2, 4}, w2));
  // Same shape + same storage is a hit.
  EXPECT_EQ(sigFor({2, 4}, w1), sigFor({2, 4}, w1));
}

TEST(ExprCache, DistinctShapesReplayWithDistinctPrograms) {
  // End-to-end guard for the shape-signature contract: two batch sizes
  // through the same cache must not collide.
  Rng rng(21);
  const Tensor w = Tensor::randn({12, 7}, rng);
  const Tensor bias = Tensor::randn({7}, rng);
  expr::ProgramCache cache;
  const BodyFn body = [](const std::vector<Tensor>& in) {
    return std::vector<Tensor>{relu(addBias(matmul(in[0], in[1]), in[2]))};
  };
  NoGradGuard noGrad;
  for (const std::int64_t batch : {2, 5, 2}) {
    const Tensor x = Tensor::randn({batch, 12}, rng);
    expr::SigHash sig;
    sig.mixShape(x.shape());
    sig.mixTensor(w);
    const auto program = cache.getOrCompile(
        sig.h, [&] { return compileBody(body, {x, w, bias}); });
    const std::vector<Tensor> fused = program->run({x, w, bias});
    const std::vector<Tensor> eager = body({x, w, bias});
    ASSERT_EQ(fused[0].shape(), eager[0].shape());
    if (kernels::activeTier() != Tier::kAvx2Fma) {
      expectBitwise(eager[0], fused[0], "cache replay");
    } else {
      expectClose(eager[0], fused[0], "cache replay");
    }
  }
  EXPECT_EQ(cache.size(), 2u) << "two shapes -> two programs";
}

}  // namespace
}  // namespace dagt::tensor
