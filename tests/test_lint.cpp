// Self-test for dagt-lint: every rule must fire exactly once on its fixture
// in tests/lint_fixtures/, suppression comments must be honored, and a clean
// file must produce no findings. The fixtures are never compiled — they are
// read from disk and linted under the virtual path of the file they
// impersonate (rule scoping keys on the path, not the real location).

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lexer.hpp"
#include "lint.hpp"

#ifndef DAGT_LINT_FIXTURE_DIR
#error "DAGT_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif

namespace dagt::lint {
namespace {

std::string readFixture(const std::string& name) {
  const std::string path = std::string(DAGT_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open lint fixture: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> lintFixture(const std::string& virtualPath,
                                 const std::string& fixtureName) {
  return lintFiles({{virtualPath, readFixture(fixtureName)}});
}

int countRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const auto& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string renderAll(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    out += f.render() + "\n";
  }
  return out;
}

TEST(DagtLint, KernelAllocFiresOnceAndHonorsAllow) {
  const auto findings =
      lintFixture("src/tensor/ops_fixture.cpp", "kernel_alloc.cpp");
  EXPECT_EQ(countRule(findings, "kernel-alloc"), 1) << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 8);
}

TEST(DagtLint, KernelAllocScopedToOpKernels) {
  // The same contents outside src/tensor/ops_*.cpp must not fire.
  const auto findings =
      lintFixture("src/core/trainer_fixture.cpp", "kernel_alloc.cpp");
  EXPECT_EQ(countRule(findings, "kernel-alloc"), 0) << renderAll(findings);
}

TEST(DagtLint, HotHeaderStdFunctionFiresOnceAndHonorsAllow) {
  const auto findings =
      lintFixture("src/tensor/ops_common.hpp", "hot_header_function.hpp");
  EXPECT_EQ(countRule(findings, "hot-header-std-function"), 1)
      << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 10);
}

TEST(DagtLint, HotHeaderRuleScopedToHotHeaders) {
  const auto findings =
      lintFixture("src/serve/callbacks.hpp", "hot_header_function.hpp");
  EXPECT_EQ(countRule(findings, "hot-header-std-function"), 0)
      << renderAll(findings);
}

TEST(DagtLint, PragmaOnceFiresOnHeaderWithoutIt) {
  const auto findings =
      lintFixture("src/nn/fixture.hpp", "missing_pragma.hpp");
  EXPECT_EQ(countRule(findings, "pragma-once"), 1) << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 1);
}

TEST(DagtLint, PragmaOnceIgnoresSourceFiles) {
  const auto findings =
      lintFixture("src/nn/fixture.cpp", "missing_pragma.hpp");
  EXPECT_EQ(countRule(findings, "pragma-once"), 0) << renderAll(findings);
}

TEST(DagtLint, UnseededRngFiresOnceAndHonorsAllow) {
  const auto findings =
      lintFixture("src/core/fixture.cpp", "unseeded_rng.cpp");
  EXPECT_EQ(countRule(findings, "unseeded-rng"), 1) << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 9);
}

TEST(DagtLint, UnseededRngExemptInsideRngSubsystem) {
  const auto findings =
      lintFixture("src/common/rng/fixture.cpp", "unseeded_rng.cpp");
  EXPECT_EQ(countRule(findings, "unseeded-rng"), 0) << renderAll(findings);
}

TEST(DagtLint, GuardedByFamilyFiresOncePerRule) {
  const auto findings = lintFiles(
      {{"src/serve/fixture.hpp", readFixture("guarded_by.hpp")},
       {"src/serve/fixture.cpp", readFixture("guarded_by.cpp")}});
  EXPECT_EQ(countRule(findings, "guarded-by"), 1) << renderAll(findings);
  EXPECT_EQ(countRule(findings, "guarded-by-unknown"), 1)
      << renderAll(findings);
  EXPECT_EQ(countRule(findings, "guarded-by-unlocked"), 1)
      << renderAll(findings);
  EXPECT_EQ(findings.size(), 3u) << renderAll(findings);
}

TEST(DagtLint, GuardedByUnlockedClearedByHeaderWithoutCompanion) {
  // Without the companion .cpp the idle and locked mutexes are both never
  // acquired, so two unlocked findings surface.
  const auto findings = lintFiles(
      {{"src/serve/fixture.hpp", readFixture("guarded_by.hpp")}});
  EXPECT_EQ(countRule(findings, "guarded-by-unlocked"), 2)
      << renderAll(findings);
}

TEST(DagtLint, GuardedByScopedToServeAndStorage) {
  const auto findings = lintFiles(
      {{"src/nn/fixture.hpp", readFixture("guarded_by.hpp")},
       {"src/nn/fixture.cpp", readFixture("guarded_by.cpp")}});
  EXPECT_EQ(findings.size(), 0u) << renderAll(findings);
}

TEST(DagtLint, StdoutLoggingFiresOnceAndHonorsAllow) {
  const auto findings = lintFixture("src/eval/fixture.cpp", "stdout.cpp");
  EXPECT_EQ(countRule(findings, "stdout-logging"), 1) << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 11);
}

TEST(DagtLint, StdoutLoggingExemptOutsideSrc) {
  for (const std::string path :
       {std::string("tools/report.cpp"), std::string("bench/report.cpp"),
        std::string("src/common/logging/fixture.cpp")}) {
    const auto findings = lintFixture(path, "stdout.cpp");
    EXPECT_EQ(countRule(findings, "stdout-logging"), 0)
        << path << "\n" << renderAll(findings);
  }
}

TEST(DagtLint, TraceMacroOnlyFiresOnceAndHonorsAllow) {
  const auto findings =
      lintFixture("src/serve/fixture.cpp", "trace_emit.cpp");
  EXPECT_EQ(countRule(findings, "trace-macro-only"), 1)
      << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 11);
}

TEST(DagtLint, TraceMacroOnlyExemptInsideObs) {
  const auto findings =
      lintFixture("src/obs/trace_fixture.cpp", "trace_emit.cpp");
  EXPECT_EQ(countRule(findings, "trace-macro-only"), 0)
      << renderAll(findings);
}

TEST(DagtLint, IntrinsicsOutsideKernelsFiresAndHonorsAllow) {
  const auto findings =
      lintFixture("src/core/simd_fixture.cpp", "raw_intrinsics.cpp");
  // Line 5: the <immintrin.h> include. Line 9: __m256 + _mm256_loadu_ps.
  // The _mm256_setzero_ps on line 13 sits under an allow comment.
  EXPECT_EQ(countRule(findings, "intrinsics-outside-kernels"), 3)
      << renderAll(findings);
  EXPECT_EQ(findings.size(), 3u) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[1].line, 9);
  EXPECT_EQ(findings[2].line, 9);
}

TEST(DagtLint, IntrinsicsAllowedInsideKernelTierFiles) {
  const auto findings = lintFixture("src/tensor/kernels/kernels_fixture.cpp",
                                    "raw_intrinsics.cpp");
  EXPECT_EQ(countRule(findings, "intrinsics-outside-kernels"), 0)
      << renderAll(findings);
}

TEST(DagtLint, FusedKernelRegistrationFiresOnMissingTierEntry) {
  // The fixture TU zero-seeds a table and forgets fusedGemmEpilogueRows;
  // the trimmed kernels.hpp impersonation supplies the member list.
  const auto findings = lintFiles(
      {{"src/tensor/kernels/kernels.hpp",
        readFixture("fused_registration.hpp")},
       {"src/tensor/kernels/kernels_newtier.cpp",
        readFixture("fused_registration.cpp")}});
  EXPECT_EQ(countRule(findings, "fused-kernel-registration"), 1)
      << renderAll(findings);
  EXPECT_EQ(findings.size(), 1u) << renderAll(findings);
  EXPECT_EQ(findings[0].path, "src/tensor/kernels/kernels_newtier.cpp");
  EXPECT_NE(findings[0].message.find("fusedGemmEpilogueRows"),
            std::string::npos);
}

TEST(DagtLint, FusedKernelRegistrationSkipsCopySeededTables) {
  // A tier built by copying another tier's table inherits its fused
  // registrations — no finding even though nothing is assigned here.
  const std::string copyOnlyTier =
      "namespace dagt::tensor::kernels {\n"
      "const KernelTable& fixtureTable() {\n"
      "  static const KernelTable t = [] {\n"
      "    KernelTable x = otherTable();\n"
      "    x.gemmRows = nullptr;\n"
      "    return x;\n"
      "  }();\n"
      "  return t;\n"
      "}\n"
      "}  // namespace dagt::tensor::kernels\n";
  const auto findings = lintFiles(
      {{"src/tensor/kernels/kernels.hpp",
        readFixture("fused_registration.hpp")},
       {"src/tensor/kernels/kernels_fixturetier.cpp", copyOnlyTier}});
  EXPECT_EQ(countRule(findings, "fused-kernel-registration"), 0)
      << renderAll(findings);
}

TEST(DagtLint, CleanFixtureProducesNoFindings) {
  const auto findings =
      lintFixture("src/serve/clean_fixture.hpp", "clean.hpp");
  EXPECT_EQ(findings.size(), 0u) << renderAll(findings);
}

// ---------------------------------------------------------------------------
// Tokenizer regressions: each fixture encodes a construct that once
// desynchronized the ad-hoc lexer (raw strings swallowing code, spliced
// line comments leaking tokens, digit separators opening bogus char
// literals). The markers pin exact line numbers after the construct.
// ---------------------------------------------------------------------------

const Token* findToken(const LexedFile& lexed, const std::string& text,
                       TokenKind kind) {
  for (const auto& t : lexed.tokens) {
    if (t.kind == kind && t.text == text) return &t;
  }
  return nullptr;
}

TEST(DagtLexer, RawStringsStayOpaqueAndCountLines) {
  const LexedFile lexed = lex(readFixture("tokenizer_raw_string.cpp"));
  // Literal contents never become code tokens...
  EXPECT_EQ(findToken(lexed, "malloc", TokenKind::kIdent), nullptr);
  EXPECT_EQ(findToken(lexed, "_mm256_loadu_ps", TokenKind::kIdent), nullptr);
  // ...but are recoverable as positioned string tokens.
  const Token* plain =
      findToken(lexed, "new malloc( rand() _mm256_loadu_ps", TokenKind::kString);
  ASSERT_NE(plain, nullptr);
  EXPECT_EQ(plain->line, 5);
  const Token* delimited = findToken(
      lexed, "contains )\" quote-close inside", TokenKind::kString);
  ASSERT_NE(delimited, nullptr);
  EXPECT_EQ(delimited->line, 6);
  const Token* multi =
      findToken(lexed, "first\nsecond\nthird", TokenKind::kString);
  ASSERT_NE(multi, nullptr);
  EXPECT_EQ(multi->line, 7);
  // Line counting survives the multi-line body.
  const Token* marker = findToken(lexed, "marker_after_raw", TokenKind::kIdent);
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->line, 12);
  // And no rule fires on literal contents even under the strictest path.
  const auto findings = lintFixture("src/tensor/ops_fixture.cpp",
                                    "tokenizer_raw_string.cpp");
  EXPECT_EQ(findings.size(), 0u) << renderAll(findings);
}

TEST(DagtLexer, LineCommentSpliceContinuesComment) {
  const LexedFile lexed = lex(readFixture("tokenizer_splice.cpp"));
  // The spliced physical line is comment text, not code.
  EXPECT_EQ(findToken(lexed, "hidden_by_splice", TokenKind::kIdent), nullptr);
  const auto comment = lexed.commentByLine.find(5);
  ASSERT_NE(comment, lexed.commentByLine.end());
  EXPECT_NE(comment->second.find("hidden_by_splice"), std::string::npos);
  const Token* marker = findToken(lexed, "after_splice", TokenKind::kIdent);
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->line, 7);
  // The rand() hidden behind the splice must not trip unseeded-rng.
  const auto findings =
      lintFixture("src/core/splice_fixture.cpp", "tokenizer_splice.cpp");
  EXPECT_EQ(countRule(findings, "unseeded-rng"), 0) << renderAll(findings);
}

TEST(DagtLexer, DigitSeparatorsStayInsideOneNumber) {
  const LexedFile lexed = lex(readFixture("tokenizer_digit_sep.cpp"));
  EXPECT_NE(findToken(lexed, "1'000'000", TokenKind::kNumber), nullptr);
  EXPECT_NE(findToken(lexed, "0xFF'00", TokenKind::kNumber), nullptr);
  EXPECT_NE(findToken(lexed, "1.5e+10", TokenKind::kNumber), nullptr);
  EXPECT_NE(findToken(lexed, "0x1.8p-3", TokenKind::kNumber), nullptr);
  const Token* marker =
      findToken(lexed, "marker_after_numbers", TokenKind::kIdent);
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->line, 12);
  // Positive control: the rand() after the separators is real code and
  // still visible to the rule engine at its true line.
  const auto findings =
      lintFixture("src/core/sep_fixture.cpp", "tokenizer_digit_sep.cpp");
  ASSERT_EQ(countRule(findings, "unseeded-rng"), 1) << renderAll(findings);
  EXPECT_EQ(findings[0].line, 9);
}

TEST(DagtLint, FindingRenderFormat) {
  Finding f;
  f.path = "src/a.cpp";
  f.line = 12;
  f.rule = "kernel-alloc";
  f.message = "msg";
  EXPECT_EQ(f.render(), "src/a.cpp:12: kernel-alloc msg");
}

}  // namespace
}  // namespace dagt::lint
