#pragma once

// dagt-analyze phase 1: per-translation-unit fact extraction.
//
// Built on the shared lexer-lite (tools/dagt_lint/lexer.hpp) plus a
// lightweight declaration/scope parser — no libclang. The parser tracks
// namespace / class / function / block nesting by brace depth, detects
// function heads (including Class::method qualifiers, constructors with
// init lists, and trailing modifiers), and threads a held-lock set through
// each function body: every std::lock_guard / unique_lock / scoped_lock /
// shared_lock construction records the mutex expression it names together
// with the guards already active, and guard-variable .unlock()/.lock()
// calls deactivate/reactivate their entry so manual unlock windows (e.g.
// PredictionEngine::workerLoop around serveBatch) do not fabricate edges.
//
// The extracted facts are deliberately flat records — phase 2
// (passes.hpp) merges the per-TU databases and resolves mutex identities
// across translation units. serializeFacts/parseFacts define a canonical
// text form used by the golden tests: serialize(parse(serialize(x)))
// must be byte-identical to serialize(x).

#include <string>
#include <vector>

namespace dagt::analyze {

/// `std::mutex member_;` declared at class scope.
struct MutexMember {
  std::string className;
  std::string member;
  int line = 0;
};

/// A field covered by a `// GUARDED_BY(mutex)` comment inside a class.
struct GuardedField {
  std::string className;
  std::string field;
  std::string mutexName;
  int line = 0;
};

/// A function definition (free or member; className empty for free).
struct FunctionDef {
  std::string className;
  std::string name;
  int line = 0;
};

/// One lock acquisition: guard construction or guard.lock() re-lock.
/// `held` lists the mutex expressions of guards already active in the
/// same function at this point (textual, unresolved).
struct LockAcquire {
  std::string function;   // enclosing function name
  std::string className;  // enclosing/qualifying class ("" for free)
  std::string mutexExpr;  // e.g. "mutex_", "buffer->mutex_"
  std::vector<std::string> held;
  int line = 0;
};

/// A call site inside a function body. memberCall marks x.f()/x->f()
/// (receiver type unknown); qualifier carries A from A::f().
struct CallSite {
  std::string function;
  std::string className;
  std::string callee;     // last name only
  std::string qualifier;  // "" or the explicit A in A::f()
  bool memberCall = false;
  std::vector<std::string> held;
  int line = 0;
};

/// A bare this-member mutation (field_ = / .push_back / ++ / ...) made
/// while at least one lock is held. Only unqualified accesses are
/// recorded — `other->field_` cannot be attributed statically.
struct MutationSite {
  std::string function;
  std::string className;
  std::string field;
  std::vector<std::string> held;
  int line = 0;
};

/// Buffer-pool contract surface: kind is one of
///   acquire      — pool-ish receiver .acquire(...)
///   release      — pool-ish receiver .release(...)
///   park         — parkGlobal(...)
///   buffer-new   — direct Buffer construction (new Buffer / make_unique)
///   make-out     — makeOut/makeView (the sanctioned wrappers)
struct PoolEvent {
  std::string kind;
  std::string function;
  std::string receiver;  // textual receiver chain ("" when none)
  std::string arg;       // first argument, textual ("" when none)
  int line = 0;
};

/// DAGT_TRACE_SCOPE / DAGT_TRACE_INSTANT with a literal name.
struct SpanUse {
  std::string kind;  // "scope" | "instant"
  std::string name;
  int line = 0;
};

/// getenv("DAGT_*") / envOr("DAGT_*", ...) read.
struct EnvRead {
  std::string via;  // "getenv" | "envOr"
  std::string name;
  int line = 0;
};

/// A KernelTable built by a tier TU. seedSource empty means zero-seeded
/// (`KernelTable x{};` — must assign every member); otherwise the callee
/// it copies from (`KernelTable x = avx2Table();`).
struct TierTable {
  std::string var;
  std::string seedSource;
  std::vector<std::string> assigned;
  int line = 0;
};

/// `// dagt-analyze: <kind>(<value>)` annotation. Kinds:
///   lock-order  value "A::m<B::n" — declared acquisition order
///   mutex       value "Class::member" — owner of an ambiguous expression
///   allow       value "<pass-id>" — suppress a finding on this/next line
struct Annotation {
  std::string kind;
  std::string value;
  int line = 0;
};

struct TuFacts {
  std::string path;
  std::vector<MutexMember> mutexes;
  std::vector<GuardedField> guarded;
  std::vector<FunctionDef> functions;
  std::vector<LockAcquire> acquires;
  std::vector<CallSite> calls;
  std::vector<MutationSite> mutations;
  std::vector<PoolEvent> pool;
  std::vector<SpanUse> spans;
  std::vector<EnvRead> envs;
  std::vector<std::string> kernelMembers;  // struct KernelTable members
  std::vector<TierTable> tiers;
  std::vector<Annotation> annotations;
};

TuFacts extractFacts(const std::string& path, const std::string& text);

/// Canonical tab-separated text form (one record per line, "-" for empty
/// fields, held sets comma-joined). Stable across re-parses.
std::string serializeFacts(const TuFacts& facts);
TuFacts parseFacts(const std::string& serialized);

}  // namespace dagt::analyze
