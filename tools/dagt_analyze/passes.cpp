#include "passes.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace dagt::analyze {

namespace {

using lint::endsWith;
using lint::startsWith;

// DOCS:ANALYZE_PASSES_BEGIN
const std::vector<PassInfo> kPasses = {
    {"lock-order-cycle", "cycle in the mutex acquisition-order graph"},
    {"lock-order-ambiguous", "unresolvable lock expression (annotate owner)"},
    {"lock-order-violation", "acquisition contradicts a declared lock-order"},
    {"pool-raw-acquire", "BufferPool::acquire outside src/tensor/"},
    {"pool-manual-release", "manual release/parkGlobal outside the pool"},
    {"pool-foreign-buffer", "direct Buffer construction outside the pool"},
    {"pool-double-release", "same buffer released twice in one function"},
    {"guarded-by-gap", "field mutated under lock without GUARDED_BY"},
    {"kernel-table-complete", "zero-seeded tier table missing a kernel slot"},
    {"span-drift", "trace span missing from docs/observability.md"},
    {"knob-drift", "DAGT_* env knob missing from docs/performance.md"},
};
// DOCS:ANALYZE_PASSES_END

/// Merged cross-TU view used by every pass.
struct Database {
  const std::vector<TuFacts>* tus = nullptr;
  // mutex member name -> declaring classes
  std::map<std::string, std::set<std::string>> mutexClasses;
  // "Class::field" annotated GUARDED_BY
  std::set<std::string> guardedFields;
  // function last name -> qualified names ("Class::name" or "name")
  std::map<std::string, std::set<std::string>> functionsByName;
  // path -> line -> allowed pass ids
  std::map<std::string, std::map<int, std::set<std::string>>> allows;
  // path -> line -> mutex owner hints ("Class::member")
  std::map<std::string, std::map<int, std::string>> mutexHints;
  // declared lock-order edges "A::m" < "B::n"
  std::set<std::pair<std::string, std::string>> declaredOrder;
};

std::string qualify(const std::string& cls, const std::string& name) {
  return cls.empty() ? name : cls + "::" + name;
}

Database buildDatabase(const std::vector<TuFacts>& tus) {
  Database db;
  db.tus = &tus;
  for (const auto& tu : tus) {
    for (const auto& m : tu.mutexes) {
      db.mutexClasses[m.member].insert(m.className);
    }
    for (const auto& g : tu.guarded) {
      db.guardedFields.insert(qualify(g.className, g.field));
    }
    for (const auto& f : tu.functions) {
      db.functionsByName[f.name].insert(qualify(f.className, f.name));
    }
    for (const auto& a : tu.annotations) {
      if (a.kind == "allow") {
        db.allows[tu.path][a.line].insert(a.value);
      } else if (a.kind == "mutex") {
        db.mutexHints[tu.path][a.line] = a.value;
      } else if (a.kind == "lock-order") {
        const std::size_t lt = a.value.find('<');
        if (lt != std::string::npos) {
          db.declaredOrder.emplace(a.value.substr(0, lt),
                                   a.value.substr(lt + 1));
        }
      }
    }
  }
  return db;
}

/// Resolve a textual mutex expression to a stable identity.
struct Resolution {
  std::string id;         // "Class::member" or "<path>::member" for locals
  bool resolved = false;  // false => ambiguous, needs an annotation
};

Resolution resolveMutex(const Database& db, const std::string& tuPath,
                        const std::string& enclosingClass, std::string expr,
                        int line) {
  Resolution r;
  // An explicit owner hint on the acquisition line (or the line above)
  // wins outright.
  const auto hintsIt = db.mutexHints.find(tuPath);
  if (hintsIt != db.mutexHints.end()) {
    for (int probe : {line, line - 1}) {
      const auto at = hintsIt->second.find(probe);
      if (at != hintsIt->second.end()) {
        r.id = at->second;
        r.resolved = true;
        return r;
      }
    }
  }
  if (startsWith(expr, "this->")) expr = expr.substr(6);
  if (expr.find('(') != std::string::npos) {
    return r;  // call result — cannot resolve statically
  }
  std::string member = expr;
  bool qualifiedAccess = false;
  for (const char* sep : {"->", ".", "::"}) {
    const std::size_t at = expr.rfind(sep);
    if (at != std::string::npos) {
      const std::string tail = expr.substr(at + std::string(sep).size());
      if (!qualifiedAccess || tail.size() < member.size()) member = tail;
      qualifiedAccess = true;
    }
  }
  const auto declarers = db.mutexClasses.find(member);
  if (!qualifiedAccess) {
    // Bare name: the enclosing class wins when it declares the member.
    if (declarers != db.mutexClasses.end()) {
      if (!enclosingClass.empty() &&
          declarers->second.count(enclosingClass) != 0) {
        r.id = enclosingClass + "::" + member;
        r.resolved = true;
        return r;
      }
      if (declarers->second.size() == 1) {
        r.id = *declarers->second.begin() + "::" + member;
        r.resolved = true;
        return r;
      }
      return r;  // several candidate owners — ambiguous
    }
    // Not a known class member: a function-local or file-static mutex.
    r.id = tuPath + "::" + member;
    r.resolved = true;
    return r;
  }
  // Member access through an object: unique declaring class or bust.
  if (declarers != db.mutexClasses.end() && declarers->second.size() == 1) {
    r.id = *declarers->second.begin() + "::" + member;
    r.resolved = true;
    return r;
  }
  return r;
}

bool isAllowed(const Database& db, const Finding& f) {
  const auto it = db.allows.find(f.path);
  if (it == db.allows.end()) return false;
  for (int probe : {f.line, f.line - 1}) {
    const auto at = it->second.find(probe);
    if (at != it->second.end() && at->second.count(f.pass) != 0) return true;
  }
  return false;
}

// -- lock-order --------------------------------------------------------------

struct Edge {
  std::string from;
  std::string to;
  std::string path;  // witness site
  int line = 0;
};

void lockOrderPasses(const Database& db, std::vector<Finding>& out) {
  std::vector<Edge> edges;
  // function qual name -> directly acquired (resolved) mutexes
  std::map<std::string, std::set<std::string>> direct;
  // function qual name -> unique known callees
  std::map<std::string, std::set<std::string>> callees;

  for (const auto& tu : *db.tus) {
    for (const auto& a : tu.acquires) {
      const Resolution target =
          resolveMutex(db, tu.path, a.className, a.mutexExpr, a.line);
      if (!target.resolved) {
        out.push_back(
            {"lock-order-ambiguous", tu.path, a.line,
             "cannot resolve mutex expression '" + a.mutexExpr +
                 "' to a unique owner; add // dagt-analyze: mutex(" +
                 "Class::member) on this line"});
      } else {
        direct[qualify(a.className, a.function)].insert(target.id);
        for (const auto& h : a.held) {
          const Resolution held =
              resolveMutex(db, tu.path, a.className, h, a.line);
          if (held.resolved && held.id != target.id) {
            edges.push_back({held.id, target.id, tu.path, a.line});
          }
        }
      }
    }
    for (const auto& c : tu.calls) {
      std::string calleeQual;
      if (!c.qualifier.empty()) {
        const auto it = db.functionsByName.find(c.callee);
        if (it != db.functionsByName.end() &&
            it->second.count(c.qualifier + "::" + c.callee) != 0) {
          calleeQual = c.qualifier + "::" + c.callee;
        }
      } else {
        const auto it = db.functionsByName.find(c.callee);
        if (it != db.functionsByName.end() && it->second.size() == 1) {
          calleeQual = *it->second.begin();
        }
      }
      if (calleeQual.empty()) continue;
      callees[qualify(c.className, c.function)].insert(calleeQual);
    }
  }

  // May-acquire fixpoint over the unique-callee graph.
  std::map<std::string, std::set<std::string>> may = direct;
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 64) {
    changed = false;
    ++rounds;
    for (const auto& [fn, cs] : callees) {
      auto& mine = may[fn];
      const std::size_t before = mine.size();
      for (const auto& callee : cs) {
        const auto it = may.find(callee);
        if (it == may.end()) continue;
        mine.insert(it->second.begin(), it->second.end());
      }
      if (mine.size() != before) changed = true;
    }
  }

  // Calls made while holding: edge held -> everything the callee may take.
  for (const auto& tu : *db.tus) {
    for (const auto& c : tu.calls) {
      if (c.held.empty()) continue;
      std::string calleeQual;
      if (!c.qualifier.empty()) {
        const auto it = db.functionsByName.find(c.callee);
        if (it != db.functionsByName.end() &&
            it->second.count(c.qualifier + "::" + c.callee) != 0) {
          calleeQual = c.qualifier + "::" + c.callee;
        }
      } else {
        const auto it = db.functionsByName.find(c.callee);
        if (it != db.functionsByName.end() && it->second.size() == 1) {
          calleeQual = *it->second.begin();
        }
      }
      if (calleeQual.empty()) continue;
      const auto acquired = may.find(calleeQual);
      if (acquired == may.end()) continue;
      for (const auto& h : c.held) {
        const Resolution held =
            resolveMutex(db, tu.path, c.className, h, c.line);
        if (!held.resolved) continue;
        for (const auto& m : acquired->second) {
          if (m != held.id) edges.push_back({held.id, m, tu.path, c.line});
        }
      }
    }
  }

  // Declared-order violations: edge X->Y while the annotation says Y<X.
  for (const auto& e : edges) {
    if (db.declaredOrder.count({e.to, e.from}) != 0) {
      out.push_back({"lock-order-violation", e.path, e.line,
                     "acquires '" + e.to + "' while holding '" + e.from +
                         "', contradicting declared lock-order(" + e.to +
                         "<" + e.from + ")"});
    }
  }

  // Cycle detection: nodes left by Kahn's algorithm sit on cycles; group
  // them into strongly-connected components and report each once.
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::string, int> indeg;
  for (const auto& e : edges) {
    indeg.emplace(e.from, 0);
    indeg.emplace(e.to, 0);
    if (adj[e.from].insert(e.to).second) ++indeg[e.to];
  }
  std::vector<std::string> queue;
  for (const auto& [n, d] : indeg) {
    if (d == 0) queue.push_back(n);
  }
  std::map<std::string, int> live = indeg;
  while (!queue.empty()) {
    const std::string n = queue.back();
    queue.pop_back();
    live.erase(n);
    const auto it = adj.find(n);
    if (it == adj.end()) continue;
    for (const auto& next : it->second) {
      const auto d = live.find(next);
      if (d != live.end() && --d->second == 0) queue.push_back(next);
    }
  }
  // `live` now holds only nodes on (or downstream of) cycles. The SCC of a
  // node is reach(node) ∩ coreach(node); a node sits on a cycle iff it can
  // reach itself through at least one edge.
  std::map<std::string, std::set<std::string>> radj;
  for (const auto& [from, tos] : adj) {
    for (const auto& to : tos) radj[to].insert(from);
  }
  const auto reachable = [&](const std::string& start,
                             const std::map<std::string, std::set<std::string>>&
                                 graph) {
    std::set<std::string> seen;
    std::vector<std::string> stack = {start};
    while (!stack.empty()) {
      const std::string cur = stack.back();
      stack.pop_back();
      const auto it = graph.find(cur);
      if (it == graph.end()) continue;
      for (const auto& next : it->second) {
        if (live.count(next) != 0 && seen.insert(next).second) {
          stack.push_back(next);
        }
      }
    }
    return seen;
  };
  std::set<std::string> reported;
  for (const auto& [node, d] : live) {
    if (reported.count(node) != 0) continue;
    const std::set<std::string> fwd = reachable(node, adj);
    if (fwd.count(node) == 0) continue;  // not on a cycle itself
    const std::set<std::string> back = reachable(node, radj);
    std::vector<std::string> component;
    for (const auto& n : fwd) {
      if (back.count(n) != 0) {
        component.push_back(n);
        reported.insert(n);
      }
    }
    std::sort(component.begin(), component.end());
    std::string cycleDesc;
    for (const auto& n : component) {
      if (!cycleDesc.empty()) cycleDesc += " <-> ";
      cycleDesc += n;
    }
    // Witness: the first edge inside the component, by (path, line).
    const Edge* witness = nullptr;
    for (const auto& e : edges) {
      if (std::find(component.begin(), component.end(), e.from) ==
              component.end() ||
          std::find(component.begin(), component.end(), e.to) ==
              component.end()) {
        continue;
      }
      if (witness == nullptr || e.path < witness->path ||
          (e.path == witness->path && e.line < witness->line)) {
        witness = &e;
      }
    }
    out.push_back({"lock-order-cycle",
                   witness != nullptr ? witness->path : "",
                   witness != nullptr ? witness->line : 0,
                   "potential deadlock: acquisition-order cycle between " +
                       cycleDesc +
                       "; break the cycle or declare the intended order "
                       "with // dagt-analyze: lock-order(A::m<B::n)"});
  }
}

// -- pooled-buffer lifetime --------------------------------------------------

bool isPoolHome(const std::string& path) {
  return startsWith(path, "src/tensor/");
}

void poolPasses(const Database& db, std::vector<Finding>& out) {
  for (const auto& tu : *db.tus) {
    // (function, arg) -> release count, for double-release.
    std::map<std::pair<std::string, std::string>, std::pair<int, int>>
        releases;  // -> {count, last line}
    for (const auto& p : tu.pool) {
      if (p.kind == "acquire" && !isPoolHome(tu.path)) {
        out.push_back({"pool-raw-acquire", tu.path, p.line,
                       "raw BufferPool acquire ('" + p.receiver +
                           ".acquire(...)') outside src/tensor/; route "
                           "allocations through makeOut/makeView or a "
                           "Workspace so the release contract stays with "
                           "the pool"});
      }
      if ((p.kind == "release" || p.kind == "park") &&
          !(tu.path == "src/tensor/storage.cpp" ||
            tu.path == "src/tensor/storage.hpp")) {
        out.push_back({"pool-manual-release", tu.path, p.line,
                       "manual pool " +
                           std::string(p.kind == "park" ? "parkGlobal"
                                                        : "release") +
                           " outside the pool implementation; ownership "
                           "must flow through the shared_ptr deleter "
                           "(single-release contract)"});
      }
      if (p.kind == "buffer-new" && !(tu.path == "src/tensor/storage.cpp" ||
                                      tu.path == "src/tensor/storage.hpp")) {
        out.push_back({"pool-foreign-buffer", tu.path, p.line,
                       "direct Buffer construction outside the pool; "
                           "foreign buffers trip the parked-bit contract "
                           "on release — acquire from BufferPool instead"});
      }
      if ((p.kind == "release" || p.kind == "park") && !p.arg.empty()) {
        auto& slot = releases[{p.function, p.arg}];
        slot.first += 1;
        slot.second = p.line;
      }
    }
    for (const auto& [key, countLine] : releases) {
      if (countLine.first < 2) continue;
      out.push_back({"pool-double-release", tu.path, countLine.second,
                     "function '" + key.first + "' releases '" + key.second +
                         "' " + std::to_string(countLine.first) +
                         " times; the second release hits the parked-bit "
                         "double-release contract at runtime"});
    }
  }
}

// -- guarded-by-gap ----------------------------------------------------------

void guardedByGapPass(const Database& db, std::vector<Finding>& out) {
  std::set<std::string> seen;  // "Class::field" already reported
  for (const auto& tu : *db.tus) {
    for (const auto& m : tu.mutations) {
      if (m.className.empty() || m.field.empty()) continue;
      const std::string qualified = qualify(m.className, m.field);
      if (db.guardedFields.count(qualified) != 0) continue;
      // The mutated name must not itself be a mutex member.
      const auto owners = db.mutexClasses.find(m.field);
      if (owners != db.mutexClasses.end() &&
          owners->second.count(m.className) != 0) {
        continue;
      }
      // At least one held lock must belong to the same class — that is
      // what proves the field is meant to be lock-protected.
      std::string protecting;
      for (const auto& h : m.held) {
        const Resolution r = resolveMutex(db, tu.path, m.className, h, m.line);
        if (r.resolved && startsWith(r.id, m.className + "::")) {
          protecting = r.id;
          break;
        }
      }
      if (protecting.empty()) continue;
      if (!seen.insert(qualified).second) continue;
      out.push_back({"guarded-by-gap", tu.path, m.line,
                     "field '" + qualified + "' is mutated under " +
                         protecting + " but carries no // GUARDED_BY(" +
                         protecting.substr(m.className.size() + 2) +
                         ") annotation on its declaration"});
    }
  }
}

// -- kernel-table-complete ---------------------------------------------------

void kernelTablePass(const Database& db, std::vector<Finding>& out) {
  std::vector<std::string> members;
  for (const auto& tu : *db.tus) {
    if (!tu.kernelMembers.empty()) members = tu.kernelMembers;
  }
  if (members.empty()) return;
  for (const auto& tu : *db.tus) {
    for (const auto& table : tu.tiers) {
      if (!table.seedSource.empty()) continue;  // copy-seeded tiers inherit
      const std::set<std::string> assigned(table.assigned.begin(),
                                           table.assigned.end());
      for (const auto& member : members) {
        if (assigned.count(member) != 0) continue;
        out.push_back({"kernel-table-complete", tu.path, table.line,
                       "zero-seeded tier table '" + table.var +
                           "' never assigns kernel slot '" + member +
                           "'; a compiled program lowering to it would "
                           "call a null pointer on this tier"});
      }
    }
  }
}

// -- docs drift --------------------------------------------------------------

bool documented(const std::string& docs, const std::string& name) {
  return docs.find("`" + name + "`") != std::string::npos;
}

bool isDocsExempt(const std::string& path) {
  return startsWith(path, "tests/");
}

void driftPasses(const Database& db, const Options& options,
                 std::vector<Finding>& out) {
  if (options.hasObsDocs) {
    std::set<std::string> reported;
    for (const auto& tu : *db.tus) {
      if (isDocsExempt(tu.path)) continue;
      for (const auto& s : tu.spans) {
        if (documented(options.obsDocs, s.name)) continue;
        if (!reported.insert(s.name).second) continue;
        out.push_back({"span-drift", tu.path, s.line,
                       "trace span '" + s.name +
                           "' is not documented in docs/observability.md"});
      }
    }
  }
  if (options.hasPerfDocs) {
    std::set<std::string> reported;
    for (const auto& tu : *db.tus) {
      if (isDocsExempt(tu.path)) continue;
      for (const auto& e : tu.envs) {
        if (documented(options.perfDocs, e.name)) continue;
        if (!reported.insert(e.name).second) continue;
        out.push_back({"knob-drift", tu.path, e.line,
                       "env knob '" + e.name +
                           "' is not documented in docs/performance.md"});
      }
    }
  }
}

void appendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string Finding::fingerprint() const {
  const std::uint64_t h = fnv1a64(pass + "|" + path + "|" + message);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string Finding::render() const {
  std::ostringstream os;
  os << path << ':' << line << ": [" << pass << "] " << message;
  return os.str();
}

const std::vector<PassInfo>& passTable() { return kPasses; }

std::vector<Finding> runPasses(const std::vector<TuFacts>& tus,
                               const Options& options) {
  const Database db = buildDatabase(tus);
  std::vector<Finding> findings;
  lockOrderPasses(db, findings);
  poolPasses(db, findings);
  guardedByGapPass(db, findings);
  kernelTablePass(db, findings);
  driftPasses(db, options, findings);

  findings.erase(std::remove_if(findings.begin(), findings.end(),
                                [&](const Finding& f) {
                                  return isAllowed(db, f);
                                }),
                 findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              if (a.pass != b.pass) return a.pass < b.pass;
              return a.message < b.message;
            });
  return findings;
}

std::string findingsToJson(const std::vector<Finding>& findings,
                           const std::vector<bool>& baselined) {
  std::string out = "{\n  \"findings\": [";
  std::size_t newCount = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const bool isBase = i < baselined.size() && baselined[i];
    if (!isBase) ++newCount;
    out += i ? ",\n    {" : "\n    {";
    out += "\"pass\": \"";
    appendJsonEscaped(out, f.pass);
    out += "\", \"path\": \"";
    appendJsonEscaped(out, f.path);
    out += "\", \"line\": " + std::to_string(f.line);
    out += ", \"fingerprint\": \"" + f.fingerprint();
    out += "\", \"baselined\": ";
    out += isBase ? "true" : "false";
    out += ", \"message\": \"";
    appendJsonEscaped(out, f.message);
    out += "\"}";
  }
  out += findings.empty() ? "],\n" : "\n  ],\n";
  out += "  \"summary\": {\"total\": " + std::to_string(findings.size()) +
         ", \"new\": " + std::to_string(newCount) +
         ", \"baselined\": " + std::to_string(findings.size() - newCount) +
         "}\n}\n";
  return out;
}

std::vector<std::string> parseBaselineFingerprints(const std::string& json) {
  std::vector<std::string> out;
  const std::string key = "\"fingerprint\"";
  std::size_t at = json.find(key);
  while (at != std::string::npos) {
    std::size_t colon = json.find(':', at + key.size());
    if (colon == std::string::npos) break;
    std::size_t open = json.find('"', colon);
    if (open == std::string::npos) break;
    std::size_t close = json.find('"', open + 1);
    if (close == std::string::npos) break;
    out.push_back(json.substr(open + 1, close - open - 1));
    at = json.find(key, close);
  }
  return out;
}

}  // namespace dagt::analyze
