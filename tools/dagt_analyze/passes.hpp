#pragma once

// dagt-analyze phase 2: whole-repo passes over the merged fact database.
//
// Passes (canonical table in passes.cpp, drift-checked against
// docs/static-analysis.md by tools/check_docs.sh):
//
//   lock-order-cycle      cycle in the mutex acquisition-order graph
//   lock-order-ambiguous  a lock expression whose owning class cannot be
//                         resolved (fix: // dagt-analyze: mutex(C::m))
//   lock-order-violation  an acquisition contradicting a declared
//                         // dagt-analyze: lock-order(A::m<B::n) edge
//   pool-raw-acquire      BufferPool::acquire outside src/tensor/
//   pool-manual-release   release/parkGlobal outside the pool itself
//   pool-foreign-buffer   direct Buffer construction outside the pool
//   pool-double-release   one function releases the same buffer twice
//   guarded-by-gap        field mutated under its class's mutex without a
//                         // GUARDED_BY(m) annotation
//   kernel-table-complete zero-seeded tier table missing a KernelTable slot
//   span-drift            trace span name missing from docs/observability.md
//   knob-drift            DAGT_* env knob missing from docs/performance.md
//
// Suppression: `// dagt-analyze: allow(<pass-id>)` on the finding's line
// or the line above. Fingerprints hash pass|path|message (line excluded)
// so baselines survive unrelated edits.

#include <cstdint>
#include <string>
#include <vector>

#include "facts.hpp"

namespace dagt::analyze {

struct Finding {
  std::string pass;
  std::string path;
  int line = 0;
  std::string message;

  std::string fingerprint() const;  // 16 hex chars, line-independent
  std::string render() const;       // path:line: [pass] message
};

struct Options {
  // Docs contents for the drift passes; when absent the pass is skipped
  // (the CLI loads them from <root>/docs, tests inject fixture text).
  bool hasObsDocs = false;
  std::string obsDocs;
  bool hasPerfDocs = false;
  std::string perfDocs;
};

struct PassInfo {
  const char* id;
  const char* summary;
};

/// The canonical pass table (order = report order).
const std::vector<PassInfo>& passTable();

/// Run every pass over the merged database. Findings are sorted by
/// (path, line, pass, message) and already filtered through
/// dagt-analyze: allow() annotations.
std::vector<Finding> runPasses(const std::vector<TuFacts>& tus,
                               const Options& options);

std::uint64_t fnv1a64(const std::string& s);

/// Machine-readable output: a stable JSON document. `baselined` marks
/// fingerprints present in the committed baseline.
std::string findingsToJson(const std::vector<Finding>& findings,
                           const std::vector<bool>& baselined);

/// Extract the "fingerprint" values from a baseline JSON document.
std::vector<std::string> parseBaselineFingerprints(const std::string& json);

}  // namespace dagt::analyze
