// dagt-analyze CLI: cross-TU semantic analysis over the repo checkout.
//
// Usage:
//   dagt_analyze [--json] [--baseline FILE] [--write-baseline FILE]
//                [--dump spans|env|passes] [ROOT]
//
// ROOT defaults to the current directory. The analyzed surface is
// src/ tools/ bench/ (build trees and test fixtures excluded) — the same
// set verify.sh's analyze stage covers. Exit codes: 0 clean (or all
// findings baselined), 1 non-baseline findings, 2 usage/IO error.
//
// --dump prints one registry per line (span names, DAGT_* env knobs, or
// analyzer pass ids) and exits 0; tools/check_docs.sh consumes these in
// place of its regex scraping when the binary has been built.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "facts.hpp"
#include "lexer.hpp"
#include "passes.hpp"

namespace {

namespace fs = std::filesystem;
using namespace dagt::analyze;

bool readFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

std::vector<TuFacts> analyzeTree(const std::string& root) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const char* top : {"src", "tools", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (dagt::lint::startsWith(name, "build") || name == "lint_fixtures" ||
            name == "analyze_fixtures") {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::string text;
      if (!readFile(it->path(), text)) continue;
      files.emplace_back(fs::relative(it->path(), root).generic_string(),
                         std::move(text));
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<TuFacts> tus;
  tus.reserve(files.size());
  for (const auto& [path, text] : files) {
    tus.push_back(extractFacts(path, text));
  }
  return tus;
}

int usage() {
  std::cerr << "usage: dagt_analyze [--json] [--baseline FILE] "
               "[--write-baseline FILE] [--dump spans|env|passes] [ROOT]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string baselinePath;
  std::string writeBaselinePath;
  std::string dump;
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      writeBaselinePath = argv[++i];
    } else if (arg == "--dump" && i + 1 < argc) {
      dump = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      root = arg;
    }
  }

  if (dump == "passes") {
    for (const auto& pass : passTable()) std::cout << pass.id << "\n";
    return 0;
  }

  const std::vector<TuFacts> tus = analyzeTree(root);
  if (tus.empty()) {
    std::cerr << "dagt_analyze: nothing to analyze under '" << root << "'\n";
    return 2;
  }

  if (dump == "spans" || dump == "env") {
    std::set<std::string> names;
    for (const auto& tu : tus) {
      if (dump == "spans") {
        for (const auto& s : tu.spans) names.insert(s.name);
      } else {
        for (const auto& e : tu.envs) names.insert(e.name);
      }
    }
    for (const auto& name : names) std::cout << name << "\n";
    return 0;
  }
  if (!dump.empty()) return usage();

  Options options;
  options.hasObsDocs =
      readFile(fs::path(root) / "docs" / "observability.md", options.obsDocs);
  options.hasPerfDocs =
      readFile(fs::path(root) / "docs" / "performance.md", options.perfDocs);

  const std::vector<Finding> findings = runPasses(tus, options);

  std::set<std::string> baseline;
  if (!baselinePath.empty()) {
    std::string text;
    if (!readFile(baselinePath, text)) {
      std::cerr << "dagt_analyze: cannot read baseline '" << baselinePath
                << "'\n";
      return 2;
    }
    for (const auto& fp : parseBaselineFingerprints(text)) {
      baseline.insert(fp);
    }
  }
  std::vector<bool> baselined(findings.size(), false);
  std::size_t newCount = 0;
  for (std::size_t i = 0; i < findings.size(); ++i) {
    baselined[i] = baseline.count(findings[i].fingerprint()) != 0;
    if (!baselined[i]) ++newCount;
  }

  if (!writeBaselinePath.empty()) {
    std::ofstream out(writeBaselinePath, std::ios::binary);
    if (!out) {
      std::cerr << "dagt_analyze: cannot write baseline '" << writeBaselinePath
                << "'\n";
      return 2;
    }
    out << findingsToJson(findings, std::vector<bool>(findings.size(), true));
    std::cout << "dagt_analyze: wrote " << findings.size()
              << " finding(s) to " << writeBaselinePath << "\n";
    return 0;
  }

  if (json) {
    std::cout << findingsToJson(findings, baselined);
  } else {
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (baselined[i]) continue;
      std::cout << findings[i].render() << "\n";
    }
    std::cout << "dagt_analyze: " << tus.size() << " TU(s), "
              << findings.size() << " finding(s), " << newCount
              << " new (not baselined)\n";
  }
  return newCount == 0 ? 0 : 1;
}
