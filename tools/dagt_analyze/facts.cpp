#include "facts.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace dagt::analyze {

using lint::LexedFile;
using lint::Token;
using lint::TokenKind;

namespace {

bool isKeyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "if",           "while",        "for",
      "switch",       "return",       "sizeof",
      "alignof",      "catch",        "throw",
      "new",          "delete",       "static_cast",
      "dynamic_cast", "reinterpret_cast", "const_cast",
      "decltype",     "noexcept",     "static_assert",
      "assert",       "defined",      "alignas",
      "typeid",       "co_await",     "co_return"};
  return kw.count(t) != 0;
}

bool isLockType(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
         t == "shared_lock";
}

/// Join a token range textually: "buffer - > mutex_" -> "buffer->mutex_".
std::string joinTokens(const std::vector<Token>& toks, std::size_t begin,
                       std::size_t end) {
  std::string out;
  for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
    if (toks[k].kind == TokenKind::kString) {
      out += '"';
      out += toks[k].text;
      out += '"';
    } else {
      out += toks[k].text;
    }
  }
  return out;
}

struct ScopeFrame {
  enum Kind { kNamespace, kClass, kFunction, kBlock, kOther };
  Kind kind = kBlock;
  std::string name;       // namespace/class name or function name
  std::string className;  // for kFunction: qualifying class
  int startLine = 0;
};

struct Guard {
  std::string var;
  std::vector<std::string> exprs;  // scoped_lock may hold several
  int depth = 0;                   // brace depth at construction
  bool active = true;
};

struct ClassRange {
  std::string name;
  int startLine = 0;
  int endLine = 0;
};

class Extractor {
 public:
  Extractor(const std::string& path, const LexedFile& lexed)
      : path_(path), lexed_(lexed), toks_(lexed.tokens) {}

  TuFacts run() {
    facts_.path = path_;
    walk();
    collectGuardedByComments();
    collectAnnotations();
    return std::move(facts_);
  }

 private:
  // -- scope queries --------------------------------------------------------

  const ScopeFrame* innermostFunction() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeFrame::kFunction) return &*it;
    }
    return nullptr;
  }

  const ScopeFrame* innermostClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeFrame::kClass) return &*it;
      if (it->kind == ScopeFrame::kFunction) break;  // locals hide fields
    }
    return nullptr;
  }

  bool atTypeScope() const {
    // Class or namespace scope (incl. file scope): where declarations and
    // function heads live.
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == ScopeFrame::kFunction || it->kind == ScopeFrame::kBlock ||
          it->kind == ScopeFrame::kOther) {
        return false;
      }
      return true;
    }
    return true;  // empty stack = file scope
  }

  std::vector<std::string> activeHeld() const {
    std::vector<std::string> held;
    for (const auto& g : guards_) {
      if (!g.active) continue;
      for (const auto& e : g.exprs) held.push_back(e);
    }
    return held;
  }

  // -- token skippers -------------------------------------------------------

  /// Index just past the matching closer for the opener at `i`.
  std::size_t skipBalanced(std::size_t i, const char* open,
                           const char* close) const {
    int depth = 0;
    while (i < toks_.size()) {
      if (lint::tokenIs(toks_, i, open)) ++depth;
      if (lint::tokenIs(toks_, i, close)) {
        --depth;
        if (depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  /// Skip `<...>` template arguments starting at a `<`; bails out (returns
  /// the start) if no `>` closes on the same statement — `<` might be a
  /// comparison.
  std::size_t skipAngles(std::size_t i) const {
    int depth = 0;
    std::size_t k = i;
    while (k < toks_.size()) {
      if (lint::tokenIs(toks_, k, "<")) ++depth;
      if (lint::tokenIs(toks_, k, ">")) {
        --depth;
        if (depth == 0) return k + 1;
      }
      if (lint::tokenIs(toks_, k, ";") || lint::tokenIs(toks_, k, "{")) break;
      ++k;
    }
    return i;
  }

  // -- walk -----------------------------------------------------------------

  void walk() {
    std::size_t i = 0;
    while (i < toks_.size()) {
      const Token& t = toks_[i];
      if (lint::tokenIs(toks_, i, "{")) {
        pushBrace();
        ++i;
        continue;
      }
      if (lint::tokenIs(toks_, i, "}")) {
        popBrace();
        ++i;
        continue;
      }
      if (lint::tokenIs(toks_, i, ";")) {
        // Forward declarations (`class X;`) and statements terminate any
        // pending head so a later `{` is not misclassified.
        clearPendings();
        ++i;
        continue;
      }
      if (t.kind != TokenKind::kIdent) {
        ++i;
        continue;
      }
      if (t.text == "template" && lint::nextIs(toks_, i, "<")) {
        i = skipAngles(i + 1);
        continue;
      }
      if (t.text == "namespace") {
        i = handleNamespace(i);
        continue;
      }
      if (t.text == "enum") {
        pendingEnum_ = true;
        ++i;
        if (i < toks_.size() &&
            (lint::tokenIs(toks_, i, "class") || lint::tokenIs(toks_, i, "struct"))) {
          ++i;  // `enum class` — do not treat as a class head
        }
        continue;
      }
      if ((t.text == "class" || t.text == "struct" || t.text == "union") &&
          i + 1 < toks_.size() && toks_[i + 1].kind == TokenKind::kIdent) {
        pendingClass_ = toks_[i + 1].text;
        pendingLine_ = toks_[i + 1].line;
        i += 2;
        continue;
      }
      if (atTypeScope()) {
        i = handleTypeScopeIdent(i);
        continue;
      }
      i = handleFunctionScopeIdent(i);
    }
  }

  void pushBrace() {
    ScopeFrame frame;
    if (pendingFunction_) {
      frame.kind = ScopeFrame::kFunction;
      frame.name = pendingFunctionName_;
      frame.className = pendingFunctionClass_;
      facts_.functions.push_back(
          {pendingFunctionClass_, pendingFunctionName_, pendingFunctionLine_});
    } else if (!pendingClass_.empty()) {
      frame.kind = ScopeFrame::kClass;
      frame.name = pendingClass_;
      frame.startLine = pendingLine_;
      classStack_.push_back(
          {pendingClass_, pendingLine_, pendingLine_});
    } else if (pendingNamespace_) {
      frame.kind = ScopeFrame::kNamespace;
      frame.name = pendingNamespaceName_;
    } else if (pendingEnum_ || atTypeScope()) {
      frame.kind = ScopeFrame::kOther;
    } else {
      frame.kind = ScopeFrame::kBlock;
    }
    clearPendings();
    scopes_.push_back(frame);
    ++braceDepth_;
  }

  void popBrace() {
    if (!scopes_.empty()) {
      if (scopes_.back().kind == ScopeFrame::kClass && !classStack_.empty()) {
        ClassRange done = classStack_.back();
        classStack_.pop_back();
        done.endLine = currentLine_;
        classRanges_.push_back(done);
      }
      scopes_.pop_back();
    }
    if (braceDepth_ > 0) --braceDepth_;
    guards_.erase(std::remove_if(guards_.begin(), guards_.end(),
                                 [&](const Guard& g) {
                                   return g.depth > braceDepth_;
                                 }),
                  guards_.end());
    clearPendings();
  }

  void clearPendings() {
    pendingFunction_ = false;
    pendingFunctionName_.clear();
    pendingFunctionClass_.clear();
    pendingClass_.clear();
    pendingNamespace_ = false;
    pendingNamespaceName_.clear();
    pendingEnum_ = false;
  }

  std::size_t handleNamespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < toks_.size() &&
           (toks_[j].kind == TokenKind::kIdent || lint::tokenIs(toks_, j, "::"))) {
      name += toks_[j].text;
      ++j;
    }
    if (lint::tokenIs(toks_, j, "{")) {
      pendingNamespace_ = true;
      pendingNamespaceName_ = name;
      return j;  // `{` handled by the main loop
    }
    return j;  // alias or using-directive — nothing to record
  }

  // At class/namespace scope: mutex member declarations, KernelTable
  // members, tier tables, and function heads.
  std::size_t handleTypeScopeIdent(std::size_t i) {
    currentLine_ = toks_[i].line;
    const ScopeFrame* cls = innermostClass();

    // `std :: mutex member_ ;` at class scope.
    if (cls != nullptr && lint::seqAt(toks_, i, {"std", "::", "mutex"}) &&
        i + 4 < toks_.size() && toks_[i + 3].kind == TokenKind::kIdent &&
        lint::tokenIs(toks_, i + 4, ";")) {
      facts_.mutexes.push_back({cls->name, toks_[i + 3].text, toks_[i + 3].line});
      return i + 5;
    }

    // Function head: IDENT `(` ... — possibly preceded by Class::.
    if (lint::nextIs(toks_, i, "(") && !isKeyword(toks_[i].text) &&
        toks_[i].text != "operator") {
      return tryFunctionHead(i);
    }
    return i + 1;
  }

  /// Parse a candidate function head whose name token is at `i` and whose
  /// `(` is at i+1. On success sets pendingFunction_ and returns the index
  /// of the body `{`; on failure returns the index just past the params.
  std::size_t tryFunctionHead(std::size_t i) {
    std::string name = toks_[i].text;
    std::string cls;
    if (i >= 2 && lint::tokenIs(toks_, i - 1, "::") &&
        toks_[i - 2].kind == TokenKind::kIdent) {
      cls = toks_[i - 2].text;
    } else if (i >= 1 && lint::tokenIs(toks_, i - 1, "~")) {
      name = "~" + name;
    }
    if (cls.empty()) {
      const ScopeFrame* enclosing = innermostClass();
      if (enclosing != nullptr) cls = enclosing->name;
    }
    const int headLine = toks_[i].line;
    std::size_t j = skipBalanced(i + 1, "(", ")");

    bool inInitList = false;
    std::string prevText = ")";  // last token seen after the params
    while (j < toks_.size()) {
      if (lint::tokenIs(toks_, j, ";")) return j + 1;  // declaration only
      if (lint::tokenIs(toks_, j, "=")) {
        // `= default;` / `= delete;` / `= 0;` — not a body.
        while (j < toks_.size() && !lint::tokenIs(toks_, j, ";")) ++j;
        return j + 1;
      }
      if (lint::tokenIs(toks_, j, "(")) {
        j = skipBalanced(j, "(", ")");
        prevText = ")";
        continue;
      }
      if (lint::tokenIs(toks_, j, ":") ) {
        inInitList = true;
        prevText = ":";
        ++j;
        continue;
      }
      if (lint::tokenIs(toks_, j, "{")) {
        if (inInitList && !prevText.empty() &&
            lint::isIdentStart(prevText[0])) {
          // `: member_{...}` brace initializer inside the init list.
          j = skipBalanced(j, "{", "}");
          prevText = "}";
          continue;
        }
        pendingFunction_ = true;
        pendingFunctionName_ = name;
        pendingFunctionClass_ = cls;
        pendingFunctionLine_ = headLine;
        return j;  // body `{` handled by the main loop
      }
      prevText = toks_[j].kind == TokenKind::kString ? "\"" : toks_[j].text;
      ++j;
    }
    return j;
  }

  // Inside a function body.
  std::size_t handleFunctionScopeIdent(std::size_t i) {
    currentLine_ = toks_[i].line;
    const ScopeFrame* fn = innermostFunction();
    if (fn == nullptr) return i + 1;
    const Token& t = toks_[i];

    if (isLockType(t.text)) {
      return handleGuardConstruction(i, *fn);
    }

    // guard.unlock() / guard.lock() on a tracked guard variable.
    if (lint::nextIs(toks_, i, ".") &&
        (lint::seqAt(toks_, i + 2, {"unlock", "("}) ||
         lint::seqAt(toks_, i + 2, {"lock", "("}))) {
      for (auto& g : guards_) {
        if (g.var != t.text) continue;
        const bool relock = lint::tokenIs(toks_, i + 2, "lock");
        if (relock && !g.active) {
          // Re-acquisition: held set = the other still-active guards.
          for (const auto& e : g.exprs) {
            facts_.acquires.push_back(
                {fn->name, fn->className, e, activeHeld(), t.line});
          }
          g.active = true;
        } else if (!relock) {
          g.active = false;
        }
        return i + 5;  // var . (un)lock ( )  — `)` at i+4
      }
    }

    // `new Buffer` — foreign buffer construction.
    if (t.text == "new" && lint::nextIs(toks_, i, "Buffer")) {
      facts_.pool.push_back(
          {"buffer-new", fn->name, "new", "", toks_[i + 1].line});
      return i + 2;
    }
    if (t.text == "make_unique" && lint::seqAt(toks_, i + 1, {"<", "Buffer"})) {
      facts_.pool.push_back(
          {"buffer-new", fn->name, "make_unique", "", t.line});
      return i + 1;
    }

    if (lint::nextIs(toks_, i, "(")) {
      return handleCallLike(i, *fn);
    }

    // Bare this-member mutation under a held lock.
    if (lint::endsWith(t.text, "_") && !isGuardVar(t.text) &&
        !activeHeld().empty()) {
      maybeRecordMutation(i, *fn);
    }
    return i + 1;
  }

  bool isGuardVar(const std::string& name) const {
    for (const auto& g : guards_) {
      if (g.var == name) return true;
    }
    return false;
  }

  std::size_t handleGuardConstruction(std::size_t i, const ScopeFrame& fn) {
    std::size_t j = i + 1;
    if (lint::tokenIs(toks_, j, "<")) j = skipAngles(j);
    if (j >= toks_.size() || toks_[j].kind != TokenKind::kIdent) {
      return i + 1;  // a type mention, not a guard construction
    }
    const std::string var = toks_[j].text;
    if (!lint::tokenIs(toks_, j + 1, "(")) return j + 1;
    const std::size_t close = skipBalanced(j + 1, "(", ")");

    // Split the constructor arguments on top-level commas.
    std::vector<std::string> exprs;
    std::size_t argBegin = j + 2;
    int depth = 0;
    for (std::size_t k = j + 2; k + 1 < close; ++k) {
      if (lint::tokenIs(toks_, k, "(") || lint::tokenIs(toks_, k, "[")) ++depth;
      if (lint::tokenIs(toks_, k, ")") || lint::tokenIs(toks_, k, "]")) --depth;
      if (depth == 0 && lint::tokenIs(toks_, k, ",")) {
        exprs.push_back(joinTokens(toks_, argBegin, k));
        argBegin = k + 1;
      }
    }
    if (argBegin < close - 1) {
      exprs.push_back(joinTokens(toks_, argBegin, close - 1));
    }
    // unique_lock tag arguments (std::defer_lock etc.) are not mutexes.
    exprs.erase(std::remove_if(exprs.begin(), exprs.end(),
                               [](const std::string& e) {
                                 return e.find("defer_lock") != std::string::npos ||
                                        e.find("adopt_lock") != std::string::npos ||
                                        e.find("try_to_lock") != std::string::npos;
                               }),
                exprs.end());
    if (exprs.empty()) return close;

    const std::vector<std::string> held = activeHeld();
    for (const auto& e : exprs) {
      facts_.acquires.push_back(
          {fn.name, fn.className, e, held, toks_[i].line});
    }
    guards_.push_back({var, exprs, braceDepth_, true});
    return close;
  }

  std::size_t handleCallLike(std::size_t i, const ScopeFrame& fn) {
    const Token& t = toks_[i];
    if (isKeyword(t.text) || t.text == "operator") return i + 1;

    // Trace spans: DAGT_TRACE_SCOPE("name" ...).
    if (t.text == "DAGT_TRACE_SCOPE" || t.text == "DAGT_TRACE_INSTANT") {
      if (i + 2 < toks_.size() && toks_[i + 2].kind == TokenKind::kString) {
        facts_.spans.push_back(
            {t.text == "DAGT_TRACE_SCOPE" ? "scope" : "instant",
             toks_[i + 2].text, t.line});
      }
      return i + 2;
    }

    // Env knobs: getenv("DAGT_X") / envOr("DAGT_X", ...).
    if (t.text == "getenv" || t.text == "envOr") {
      if (i + 2 < toks_.size() && toks_[i + 2].kind == TokenKind::kString &&
          lint::startsWith(toks_[i + 2].text, "DAGT_")) {
        facts_.envs.push_back({t.text, toks_[i + 2].text, t.line});
      }
      return i + 3;
    }

    const bool memberCall =
        i >= 1 && (lint::tokenIs(toks_, i - 1, ".") ||
                   (i >= 2 && lint::tokenIs(toks_, i - 1, ">") &&
                    lint::tokenIs(toks_, i - 2, "-")));

    // Pool events.
    if (t.text == "acquire" || t.text == "release" || t.text == "parkGlobal") {
      const std::string receiver = memberCall ? receiverChain(i) : "";
      const bool poolish = receiver.find("ool") != std::string::npos ||
                           t.text == "parkGlobal";
      if (poolish) {
        const std::size_t close = skipBalanced(i + 1, "(", ")");
        const std::string arg = joinTokens(toks_, i + 2, close - 1);
        facts_.pool.push_back({t.text == "parkGlobal" ? "park" : t.text,
                               fn.name, receiver, arg, t.line});
        return i + 2;
      }
    }
    if (t.text == "makeOut" || t.text == "makeView") {
      facts_.pool.push_back({"make-out", fn.name, t.text, "", t.line});
      return i + 2;
    }

    std::string qualifier;
    if (i >= 2 && lint::tokenIs(toks_, i - 1, "::") &&
        toks_[i - 2].kind == TokenKind::kIdent) {
      qualifier = toks_[i - 2].text;
    }
    facts_.calls.push_back({fn.name, fn.className, t.text, qualifier,
                            memberCall, activeHeld(), t.line});
    return i + 1;
  }

  /// Textual receiver chain for x.y()->acquire(: walk back over
  /// ident / :: / . / -> / () tokens.
  std::string receiverChain(std::size_t i) const {
    std::size_t begin = i;
    // Step over the . or -> that precedes the member name.
    if (begin >= 1 && lint::tokenIs(toks_, begin - 1, ".")) {
      begin -= 1;
    } else if (begin >= 2 && lint::tokenIs(toks_, begin - 1, ">") &&
               lint::tokenIs(toks_, begin - 2, "-")) {
      begin -= 2;
    } else {
      return "";
    }
    std::size_t k = begin;
    int parens = 0;
    while (k > 0) {
      const Token& p = toks_[k - 1];
      if (lint::tokenIs(toks_, k - 1, ")")) {
        ++parens;
        --k;
        continue;
      }
      if (lint::tokenIs(toks_, k - 1, "(")) {
        if (parens == 0) break;
        --parens;
        --k;
        continue;
      }
      if (parens > 0) {
        --k;
        continue;
      }
      if (p.kind == TokenKind::kIdent || lint::tokenIs(toks_, k - 1, "::") ||
          lint::tokenIs(toks_, k - 1, ".") ||
          lint::tokenIs(toks_, k - 1, ">") || lint::tokenIs(toks_, k - 1, "-")) {
        --k;
        continue;
      }
      break;
    }
    return joinTokens(toks_, k, begin);
  }

  void maybeRecordMutation(std::size_t i, const ScopeFrame& fn) {
    // Only bare (this-)member accesses: the previous token must not be a
    // member-access or scope operator.
    if (i >= 1 && (lint::tokenIs(toks_, i - 1, ".") ||
                   lint::tokenIs(toks_, i - 1, ">") ||
                   lint::tokenIs(toks_, i - 1, "::"))) {
      return;
    }
    const std::string& field = toks_[i].text;
    bool mutated = false;

    // field_ = ...   (but not ==, <=, >=, !=)
    if (lint::tokenIs(toks_, i + 1, "=") && !lint::tokenIs(toks_, i + 2, "=") &&
        !(i >= 1 && (lint::tokenIs(toks_, i - 1, "=") ||
                     lint::tokenIs(toks_, i - 1, "!") ||
                     lint::tokenIs(toks_, i - 1, "<") ||
                     lint::tokenIs(toks_, i - 1, ">")))) {
      mutated = true;
    }
    // field_ += / -= / |= / &= / ^=
    if (!mutated &&
        (lint::tokenIs(toks_, i + 1, "+") || lint::tokenIs(toks_, i + 1, "-") ||
         lint::tokenIs(toks_, i + 1, "|") || lint::tokenIs(toks_, i + 1, "&") ||
         lint::tokenIs(toks_, i + 1, "^")) &&
        lint::tokenIs(toks_, i + 2, "=") && !lint::tokenIs(toks_, i + 3, "=")) {
      mutated = true;
    }
    // field_++ / field_--
    if (!mutated && ((lint::seqAt(toks_, i + 1, {"+", "+"})) ||
                     (lint::seqAt(toks_, i + 1, {"-", "-"})))) {
      mutated = true;
    }
    // field_.mutatingMethod(...)
    if (!mutated && lint::tokenIs(toks_, i + 1, ".") && i + 2 < toks_.size()) {
      static const std::set<std::string> mutators = {
          "push_back", "pop_back",  "push_front", "pop_front", "emplace",
          "emplace_back", "emplace_front", "erase", "clear", "insert",
          "reset", "emplace_hint", "assign", "swap", "resize"};
      if (mutators.count(toks_[i + 2].text) != 0) mutated = true;
    }
    // field_[...] = ...
    if (!mutated && lint::tokenIs(toks_, i + 1, "[")) {
      const std::size_t close = skipBalanced(i + 1, "[", "]");
      if (lint::tokenIs(toks_, close, "=") &&
          !lint::tokenIs(toks_, close + 1, "=")) {
        mutated = true;
      }
    }
    if (!mutated) return;
    facts_.mutations.push_back(
        {fn.name, fn.className, field, activeHeld(), toks_[i].line});
  }

  // -- comment channels -----------------------------------------------------

  void collectGuardedByComments() {
    // Idents ending in '_' per line, for field-name association.
    std::map<int, std::vector<std::string>> fieldsByLine;
    for (const auto& t : toks_) {
      if (t.kind == TokenKind::kIdent && lint::endsWith(t.text, "_")) {
        fieldsByLine[t.line].push_back(t.text);
      }
    }
    for (const auto& [line, body] : lexed_.commentByLine) {
      std::size_t at = body.find("GUARDED_BY(");
      while (at != std::string::npos) {
        const std::size_t close = body.find(')', at);
        if (close == std::string::npos) break;
        const std::string mutexName = body.substr(at + 11, close - at - 11);
        const ClassRange* cls = classAtLine(line);
        if (cls != nullptr) {
          // The annotated field: first '_'-suffixed ident on the comment's
          // own line (trailing comment), else on the next few lines
          // (comment-above style, possibly a multi-line declaration).
          std::string field;
          for (int probe = line; probe <= line + 3 && field.empty(); ++probe) {
            const auto it = fieldsByLine.find(probe);
            if (it != fieldsByLine.end()) field = it->second.front();
          }
          if (!field.empty() && field != mutexName) {
            facts_.guarded.push_back({cls->name, field, mutexName, line});
          }
        }
        at = body.find("GUARDED_BY(", close);
      }
    }
  }

  const ClassRange* classAtLine(int line) const {
    const ClassRange* best = nullptr;
    for (const auto& r : classRanges_) {
      if (line < r.startLine || line > r.endLine) continue;
      if (best == nullptr || r.startLine > best->startLine) best = &r;
    }
    return best;
  }

  void collectAnnotations() {
    for (const auto& [line, body] : lexed_.commentByLine) {
      std::size_t at = body.find("dagt-analyze:");
      while (at != std::string::npos) {
        std::size_t cursor = at + 13;
        for (const char* kind : {"lock-order", "mutex", "allow"}) {
          const std::string probe = std::string(kind) + "(";
          const std::size_t open = body.find(probe, cursor);
          if (open == std::string::npos) continue;
          const std::size_t close = body.find(')', open);
          if (close == std::string::npos) continue;
          std::string value =
              body.substr(open + probe.size(), close - open - probe.size());
          value.erase(std::remove_if(value.begin(), value.end(),
                                     [](char c) {
                                       return std::isspace(
                                           static_cast<unsigned char>(c));
                                     }),
                      value.end());
          facts_.annotations.push_back({kind, value, line});
        }
        at = body.find("dagt-analyze:", at + 13);
      }
    }
    std::sort(facts_.annotations.begin(), facts_.annotations.end(),
              [](const Annotation& a, const Annotation& b) {
                if (a.line != b.line) return a.line < b.line;
                if (a.kind != b.kind) return a.kind < b.kind;
                return a.value < b.value;
              });
  }

  const std::string& path_;
  const LexedFile& lexed_;
  const std::vector<Token>& toks_;
  TuFacts facts_;
  std::vector<ScopeFrame> scopes_;
  std::vector<Guard> guards_;
  std::vector<ClassRange> classStack_;
  std::vector<ClassRange> classRanges_;
  int braceDepth_ = 0;
  int currentLine_ = 0;

  bool pendingFunction_ = false;
  std::string pendingFunctionName_;
  std::string pendingFunctionClass_;
  int pendingFunctionLine_ = 0;
  std::string pendingClass_;
  int pendingLine_ = 0;
  bool pendingNamespace_ = false;
  std::string pendingNamespaceName_;
  bool pendingEnum_ = false;
};

/// KernelTable slots: `( * name ) ( ... )` function-pointer members inside
/// the struct's declaration. Collected with a flat token scan scoped to the
/// KernelTable braces (the struct holds nothing else).
std::vector<std::string> collectKernelMembers(const LexedFile& lexed) {
  std::vector<std::string> members;
  const auto& toks = lexed.tokens;
  std::size_t begin = toks.size();
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if ((lint::tokenIs(toks, i, "struct") || lint::tokenIs(toks, i, "class")) &&
        lint::tokenIs(toks, i + 1, "KernelTable") &&
        lint::tokenIs(toks, i + 2, "{")) {
      begin = i + 3;
      break;
    }
  }
  int depth = 1;
  for (std::size_t i = begin; i < toks.size() && depth > 0; ++i) {
    if (lint::tokenIs(toks, i, "{")) ++depth;
    if (lint::tokenIs(toks, i, "}")) --depth;
    if (depth > 0 && lint::tokenIs(toks, i, "(") &&
        lint::tokenIs(toks, i + 1, "*") &&
        i + 3 < toks.size() && toks[i + 2].kind == TokenKind::kIdent &&
        lint::tokenIs(toks, i + 3, ")")) {
      members.push_back(toks[i + 2].text);
    }
  }
  return members;
}

/// Tier tables in kernels_*.cpp: `KernelTable x { }` (zero-seeded) or
/// `KernelTable x = source ( )` (copy-seeded), plus `x . member =` assigns.
std::vector<TierTable> collectTierTables(const LexedFile& lexed) {
  std::vector<TierTable> tables;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!lint::tokenIs(toks, i, "KernelTable")) continue;
    if (toks[i + 1].kind != TokenKind::kIdent) continue;
    TierTable table;
    table.var = toks[i + 1].text;
    table.line = toks[i].line;
    if (lint::tokenIs(toks, i + 2, "{")) {
      // zero-seeded
    } else if (lint::tokenIs(toks, i + 2, "=") && i + 3 < toks.size() &&
               toks[i + 3].kind == TokenKind::kIdent &&
               lint::tokenIs(toks, i + 4, "(")) {
      table.seedSource = toks[i + 3].text;
    } else {
      continue;  // a parameter or reference, not a table definition
    }
    for (std::size_t k = i; k + 3 < toks.size(); ++k) {
      if (lint::tokenIs(toks, k, table.var.c_str()) &&
          lint::tokenIs(toks, k + 1, ".") &&
          toks[k + 2].kind == TokenKind::kIdent &&
          lint::tokenIs(toks, k + 3, "=") && !lint::tokenIs(toks, k + 4, "=")) {
        table.assigned.push_back(toks[k + 2].text);
      }
    }
    tables.push_back(std::move(table));
  }
  return tables;
}

// -- serialization ----------------------------------------------------------

std::string enc(const std::string& s) { return s.empty() ? "-" : s; }
std::string dec(const std::string& s) { return s == "-" ? "" : s; }

std::string encList(const std::vector<std::string>& v) {
  if (v.empty()) return "-";
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ',';
    out += v[i];
  }
  return out;
}

std::vector<std::string> decList(const std::string& s) {
  std::vector<std::string> out;
  if (s == "-") return out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t comma = s.find(',', begin);
    if (comma == std::string::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, comma - begin));
    begin = comma + 1;
  }
  return out;
}

}  // namespace

TuFacts extractFacts(const std::string& path, const std::string& text) {
  const LexedFile lexed = lint::lex(text);
  Extractor extractor(path, lexed);
  TuFacts facts = extractor.run();
  if (lint::endsWith(path, "kernels.hpp")) {
    facts.kernelMembers = collectKernelMembers(lexed);
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (lint::startsWith(base, "kernels_") && lint::endsWith(base, ".cpp")) {
    facts.tiers = collectTierTables(lexed);
  }
  return facts;
}

std::string serializeFacts(const TuFacts& f) {
  std::ostringstream os;
  os << "path\t" << enc(f.path) << "\n";
  for (const auto& m : f.mutexes) {
    os << "mutex\t" << enc(m.className) << "\t" << enc(m.member) << "\t"
       << m.line << "\n";
  }
  for (const auto& g : f.guarded) {
    os << "guard\t" << enc(g.className) << "\t" << enc(g.field) << "\t"
       << enc(g.mutexName) << "\t" << g.line << "\n";
  }
  for (const auto& fn : f.functions) {
    os << "fn\t" << enc(fn.className) << "\t" << enc(fn.name) << "\t"
       << fn.line << "\n";
  }
  for (const auto& a : f.acquires) {
    os << "acq\t" << enc(a.function) << "\t" << enc(a.className) << "\t"
       << enc(a.mutexExpr) << "\t" << a.line << "\t" << encList(a.held)
       << "\n";
  }
  for (const auto& c : f.calls) {
    os << "call\t" << enc(c.function) << "\t" << enc(c.className) << "\t"
       << enc(c.callee) << "\t" << enc(c.qualifier) << "\t"
       << (c.memberCall ? 1 : 0) << "\t" << c.line << "\t" << encList(c.held)
       << "\n";
  }
  for (const auto& m : f.mutations) {
    os << "mut\t" << enc(m.function) << "\t" << enc(m.className) << "\t"
       << enc(m.field) << "\t" << m.line << "\t" << encList(m.held) << "\n";
  }
  for (const auto& p : f.pool) {
    os << "pool\t" << enc(p.kind) << "\t" << enc(p.function) << "\t"
       << enc(p.receiver) << "\t" << enc(p.arg) << "\t" << p.line << "\n";
  }
  for (const auto& s : f.spans) {
    os << "span\t" << enc(s.kind) << "\t" << enc(s.name) << "\t" << s.line
       << "\n";
  }
  for (const auto& e : f.envs) {
    os << "env\t" << enc(e.via) << "\t" << enc(e.name) << "\t" << e.line
       << "\n";
  }
  for (const auto& k : f.kernelMembers) {
    os << "kmember\t" << enc(k) << "\n";
  }
  for (const auto& t : f.tiers) {
    os << "tier\t" << enc(t.var) << "\t" << enc(t.seedSource) << "\t"
       << t.line << "\t" << encList(t.assigned) << "\n";
  }
  for (const auto& a : f.annotations) {
    os << "annot\t" << enc(a.kind) << "\t" << enc(a.value) << "\t" << a.line
       << "\n";
  }
  return os.str();
}

TuFacts parseFacts(const std::string& serialized) {
  TuFacts f;
  std::istringstream in(serialized);
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> cols;
    std::size_t begin = 0;
    while (begin <= line.size()) {
      const std::size_t tab = line.find('\t', begin);
      if (tab == std::string::npos) {
        cols.push_back(line.substr(begin));
        break;
      }
      cols.push_back(line.substr(begin, tab - begin));
      begin = tab + 1;
    }
    if (cols.empty()) continue;
    const std::string& kind = cols[0];
    auto num = [&](std::size_t i) {
      return i < cols.size() ? std::atoi(cols[i].c_str()) : 0;
    };
    auto str = [&](std::size_t i) {
      return i < cols.size() ? dec(cols[i]) : std::string();
    };
    auto list = [&](std::size_t i) {
      return i < cols.size() ? decList(cols[i]) : std::vector<std::string>();
    };
    if (kind == "path") {
      f.path = str(1);
    } else if (kind == "mutex") {
      f.mutexes.push_back({str(1), str(2), num(3)});
    } else if (kind == "guard") {
      f.guarded.push_back({str(1), str(2), str(3), num(4)});
    } else if (kind == "fn") {
      f.functions.push_back({str(1), str(2), num(3)});
    } else if (kind == "acq") {
      f.acquires.push_back({str(1), str(2), str(3), list(5), num(4)});
    } else if (kind == "call") {
      f.calls.push_back(
          {str(1), str(2), str(3), str(4), num(5) != 0, list(7), num(6)});
    } else if (kind == "mut") {
      f.mutations.push_back({str(1), str(2), str(3), list(5), num(4)});
    } else if (kind == "pool") {
      f.pool.push_back({str(1), str(2), str(3), str(4), num(5)});
    } else if (kind == "span") {
      f.spans.push_back({str(1), str(2), num(3)});
    } else if (kind == "env") {
      f.envs.push_back({str(1), str(2), num(3)});
    } else if (kind == "kmember") {
      f.kernelMembers.push_back(str(1));
    } else if (kind == "tier") {
      TierTable t;
      t.var = str(1);
      t.seedSource = str(2);
      t.line = num(3);
      t.assigned = list(4);
      f.tiers.push_back(std::move(t));
    } else if (kind == "annot") {
      f.annotations.push_back({str(1), str(2), num(3)});
    }
  }
  return f;
}

}  // namespace dagt::analyze
