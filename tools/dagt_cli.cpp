// dagt — command-line front end to the library.
//
//   dagt gen <design> [--scale S] [--nl out.dagtnl] [--lib out.dagtlib]
//       [--pl out.dagtpl]
//       Generate a named suite design, map it to its node, place it
//       (with the same placement stream the training pipeline uses) and
//       write the netlist / library / placement interchange files.
//
//   dagt stats <netlist.dagtnl> <lib.dagtlib>
//       Table-1 style statistics of a netlist file.
//
//   dagt sta <netlist.dagtnl> <lib.dagtlib> [--routed]
//       Static timing analysis: worst arrival, slack summary against an
//       auto-derived constraint, and the critical-path report.
//
//   dagt opt <netlist.dagtnl> <lib.dagtlib> [--out optimized.dagtnl]
//       Timing optimization (sizing + buffering); reports the improvement.
//
//   dagt train [--scale S] [--epochs E] [--strategy NAME]
//       Train a predictor on the paper's split and print test R^2 rows.
//
//   dagt export [--scale S] [--epochs E] [--strategy NAME] [--out DIR]
//       [--emit DIR]
//       Train like `train`, then save the predictor as a deployable model
//       bundle (manifest + weights) under DIR. --emit additionally writes
//       the test designs' netlist/placement/library interchange files so
//       `dagt predict` can be exercised immediately.
//
//   dagt predict <bundle> <netlist.dagtnl> <lib.dagtlib> [--pl F]
//       [--endpoints I,J,...] [--batch N] [--wait-us U] [--dump]
//       [--metrics-json F]
//       Load a bundle into the serving engine, prepare the design's
//       pre-routing features, and answer arrival-time queries. Without
//       --endpoints, predicts every endpoint (bit-exact with the
//       trainer's in-process predictions) and prints a summary; with it,
//       serves the listed endpoints through the batching queue. Serving
//       metrics are printed afterwards (--metrics-json writes them as
//       JSON). Measured by bench_serve_throughput on the reference box
//       (or1200, 408 endpoints): 225.3 QPS single-request, 891.9 QPS
//       batched (3.96x). DAGT_RETRIEVAL=1 additionally fronts Bayesian
//       bundles with the learned prediction cache (docs/retrieval.md).
//
//   dagt whatif <bundle> <netlist.dagtnl> <lib.dagtlib> [--pl F]
//       [--edits FILE] [--repl] [--metrics-json F]
//       Interactive what-if timing: load the design into the serving
//       engine once, then apply ECO edits (cell resize/move, fanout
//       buffering) and re-predict incrementally — only the edit's dirty
//       cone is re-extracted. --edits replays a command file (one command
//       per line, # comments); --repl drops into the interactive loop
//       afterwards (or on its own). Commands: resize, move, buffer,
//       query, sync, commit, revert, stats, help, quit — see
//       docs/whatif.md. Exits nonzero if any scripted command failed.
//
//   dagt fleet <bundle> <netlist.dagtnl> <lib.dagtlib> [--pl F]
//       [--config F] [--shards N] [--replication R] [--endpoints I,J,...]
//       [--requests N] [--metrics-json F]
//       Serve through a shard fleet: spin up N in-process serve shards
//       behind the consistent-hash router, load the design on its owner
//       replicas, and answer queries with load-aware dispatch. Without
//       --endpoints, sends --requests single-endpoint queries round-robin
//       over the design (a routed smoke) plus a full-design prediction.
//       DAGT_FLEET_* env knobs and the --config key=value file feed the
//       same FleetConfig (file beats env, flags beat both); see
//       docs/fleet.md. Fleet metrics (per-shard breakdown, hedges, sheds,
//       fleet/* spans) are printed afterwards; --metrics-json writes them
//       as JSON.
//
//   dagt trace <command> [args...] [--trace-out F]
//       Run any of the commands above with tracing enabled; writes the
//       Chrome trace_event JSON to F (default dagt_trace.json — load it
//       at chrome://tracing or ui.perfetto.dev) and prints the self-time
//       profile and span coverage. See docs/observability.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"
#include "netlist/io.hpp"
#include "place/layout_maps.hpp"
#include "place/placer.hpp"
#include "serve/feature_service.hpp"
#include "serve/model_bundle.hpp"
#include "serve/prediction_engine.hpp"
#include "sta/sta_engine.hpp"
#include "sta/timing_optimizer.hpp"
#include "sta/timing_report.hpp"
#include "fleet/shard_router.hpp"
#include "whatif/edit_script.hpp"
#include "whatif/whatif_session.hpp"

namespace {

using namespace dagt;

/// Flag parser with per-subcommand validation: positional args plus
/// --key value / --key=value pairs. Valued flags always consume the next
/// token (so negative numbers like `--shift -0.5` parse unambiguously);
/// boolean flags (declared with a trailing '!') never do. Unknown flags
/// are an error that lists the subcommand's valid flags.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;
  std::string error;  // non-empty => parse failed

  /// spec: valued flag names, boolean flags suffixed with '!'.
  static Args parse(int argc, char** argv,
                    const std::vector<std::string>& spec) {
    std::set<std::string> valued, boolean;
    for (const auto& s : spec) {
      if (!s.empty() && s.back() == '!') {
        boolean.insert(s.substr(0, s.size() - 1));
      } else {
        valued.insert(s);
      }
    }
    Args args;
    for (int i = 2; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        args.positional.push_back(token);
        continue;
      }
      std::string key = token.substr(2);
      std::string value;
      bool inlineValue = false;
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        value = key.substr(eq + 1);
        key = key.substr(0, eq);
        inlineValue = true;
      }
      if (boolean.count(key)) {
        if (inlineValue) {
          args.error = "flag --" + key + " takes no value";
          return args;
        }
        args.flags[key] = "1";
        continue;
      }
      if (!valued.count(key)) {
        std::string known;
        for (const auto& s : spec) {
          known += known.empty() ? "--" : ", --";
          known += s.back() == '!' ? s.substr(0, s.size() - 1) : s;
        }
        args.error = "unknown flag --" + key +
                     (known.empty() ? " (this command takes no flags)"
                                    : "; valid flags: " + known);
        return args;
      }
      if (!inlineValue) {
        if (i + 1 >= argc) {
          args.error = "flag --" + key + " expects a value";
          return args;
        }
        value = argv[++i];
      }
      args.flags[key] = value;
    }
    return args;
  }

  std::string flagOr(const std::string& key, std::string fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  float floatFlag(const std::string& key, float fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    char* end = nullptr;
    const float value = std::strtof(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
      std::fprintf(stderr, "warning: --%s value '%s' is not a number\n",
                   key.c_str(), it->second.c_str());
      return fallback;
    }
    return value;
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

int usage() {
  std::fprintf(stderr,
               "usage: dagt <gen|stats|sta|opt|train|export|predict|whatif|"
               "fleet|trace> [args]\n"
               "run 'dagt' with a command to see its flags in the header "
               "of tools/dagt_cli.cpp\n");
  return 2;
}

int cmdGen(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string name = args.positional[0];
  const float scale = args.floatFlag("scale", 1.0f);

  const designgen::DesignSuite suite(scale);
  const auto& entry = suite.entry(name);
  const auto lib = netlist::CellLibrary::makeNode(entry.node);
  auto nl = suite.buildNetlist(entry, lib);
  // Match the training pipeline's per-design placement stream so that a
  // generated file reproduces the exact features a trained model saw.
  place::PlacerConfig placer;
  placer.seed ^= entry.spec.seed;
  const auto placement = place::Placer::place(nl, placer);

  const std::string nlPath = args.flagOr("nl", name + ".dagtnl");
  const std::string libPath = args.flagOr(
      "lib", netlist::techNodeName(entry.node) + ".dagtlib");
  const std::string plPath = args.flagOr("pl", name + ".dagtpl");
  netlist::io::writeNetlistFile(nl, nlPath);
  netlist::io::writeLibraryFile(lib, libPath);
  serve::writePlacementFile(placement, plPath);
  const auto stats = nl.stats();
  std::printf("%s @ %s: %lld pins, %lld endpoints, die %.1fx%.1f um\n",
              name.c_str(), netlist::techNodeName(entry.node).c_str(),
              static_cast<long long>(stats.numPins),
              static_cast<long long>(stats.numEndpoints),
              placement.dieArea.width(), placement.dieArea.height());
  std::printf("wrote %s, %s and %s\n", nlPath.c_str(), libPath.c_str(),
              plPath.c_str());
  return 0;
}

int cmdStats(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  const auto nl = netlist::io::readNetlistFile(args.positional[0], lib);
  const auto s = nl.stats();
  TextTable table({"design", "tech node", "#pin", "#edp", "#e_n", "#e_c"});
  table.addRow({nl.name(), netlist::techNodeName(lib.node()),
                std::to_string(s.numPins), std::to_string(s.numEndpoints),
                std::to_string(s.numNetEdges),
                std::to_string(s.numCellEdges)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmdSta(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  const auto nl = netlist::io::readNetlistFile(args.positional[0], lib);

  sta::TimingResult timing;
  if (args.has("routed")) {
    // Routed model needs a congestion map; derive the die from locations.
    Rect die{{0, 0}, {0, 0}};
    for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
      die.expand(nl.pinLocation(p));
    }
    place::PlacementResult placement;
    placement.dieArea = die;
    const place::LayoutMaps maps(nl, placement, 32);
    timing = sta::StaEngine::run(
        nl, &maps, sta::RouteConfig{sta::WireModel::kRouted, 1.0f, 0.15f});
  } else {
    timing = sta::StaEngine::run(
        nl, nullptr,
        sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  }

  const auto constraints =
      sta::TimingConstraints::fromEstimate(timing.worstArrival);
  const auto slack = sta::computeSlack(nl, timing, constraints);
  std::printf("worst arrival %.1f ps over %zu endpoints\n",
              timing.worstArrival, slack.endpoints.size());
  std::printf("auto constraint: clock %.1f ps -> WNS %.1f ps, TNS %.1f ps, "
              "%lld violations\n",
              constraints.clockPeriod, slack.worstNegativeSlack,
              slack.totalNegativeSlack,
              static_cast<long long>(slack.violatingEndpoints));
  const auto path = sta::traceCriticalPath(nl, timing);
  std::printf("%s", sta::formatPathReport(nl, path).c_str());
  return 0;
}

int cmdOpt(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  auto nl = netlist::io::readNetlistFile(args.positional[0], lib);

  Rect die{{0, 0}, {0, 0}};
  for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
    die.expand(nl.pinLocation(p));
  }
  place::PlacementResult placement;
  placement.dieArea = die;
  const place::LayoutMaps maps(nl, placement, 32);
  const auto report = sta::TimingOptimizer::optimize(nl, maps);
  std::printf("resized %d cells, inserted %d buffers: worst arrival "
              "%.1f -> %.1f ps\n",
              report.cellsResized, report.buffersInserted,
              report.worstArrivalBefore, report.worstArrivalAfter);
  if (args.has("out")) {
    netlist::io::writeNetlistFile(nl, args.flagOr("out", "optimized.dagtnl"));
    std::printf("wrote %s\n", args.flagOr("out", "optimized.dagtnl").c_str());
  }
  return 0;
}

// -- Shared training path of `train` and `export` ----------------------------

core::Strategy parseStrategy(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "advonly") return core::Strategy::kAdvOnly;
  if (name == "simplemerge") return core::Strategy::kSimpleMerge;
  if (name == "paramshare") return core::Strategy::kParamShare;
  if (name == "ptft") return core::Strategy::kPretrainFinetune;
  if (name == "ours") return core::Strategy::kOurs;
  *ok = false;
  return core::Strategy::kOurs;
}

/// The paper's split, built once: 7nm target + 130nm sources for training,
/// five 7nm designs held out for test.
struct PaperSplit {
  features::DataConfig dataConfig;
  std::unique_ptr<features::DataPipeline> pipeline;
  std::vector<features::DesignData> train;
  std::vector<features::DesignData> test;
  std::unique_ptr<core::TimingDataset> trainSet;
  std::unique_ptr<core::TimingDataset> testSet;
};

std::unique_ptr<PaperSplit> buildPaperSplit(float scale) {
  auto split = std::make_unique<PaperSplit>();
  split->dataConfig.designScale = scale;
  split->pipeline =
      std::make_unique<features::DataPipeline>(split->dataConfig);
  for (const char* n :
       {"smallboom", "jpeg", "linkruncca", "spiMaster", "usbf_device"}) {
    split->train.push_back(split->pipeline->build(n));
  }
  for (const char* n : {"arm9", "chacha", "hwacha", "or1200", "sha3"}) {
    split->test.push_back(split->pipeline->build(n));
  }
  auto pointers = [](const std::vector<features::DesignData>& v) {
    std::vector<const features::DesignData*> p;
    for (const auto& d : v) p.push_back(&d);
    return p;
  };
  split->trainSet =
      std::make_unique<core::TimingDataset>(pointers(split->train));
  split->testSet =
      std::make_unique<core::TimingDataset>(pointers(split->test));
  split->trainSet->restrictEndpoints(split->train.front(), 48, 99);
  return split;
}

struct TrainedModel {
  std::unique_ptr<PaperSplit> split;
  std::unique_ptr<core::TimingModel> model;
  core::TrainConfig config;
  core::Strategy strategy = core::Strategy::kOurs;
  core::TrainStats stats;
};

TrainedModel trainOnPaperSplit(const Args& args) {
  Log::threshold() = LogLevel::kInfo;
  TrainedModel out;
  const float scale = args.floatFlag("scale", 0.5f);
  bool ok = false;
  out.strategy = parseStrategy(args.flagOr("strategy", "ours"), &ok);
  DAGT_CHECK_MSG(ok, "unknown strategy '" << args.flagOr("strategy", "ours")
                                          << "' (advonly, simplemerge, "
                                             "paramshare, ptft, ours)");
  out.split = buildPaperSplit(scale);
  out.config.epochs = static_cast<int>(args.floatFlag("epochs", 24.0f));
  out.config.learningRate = 5e-3f;
  const core::Trainer trainer(*out.split->trainSet, out.config);
  out.model = trainer.train(out.strategy, &out.stats);
  return out;
}

void printEvalTable(const TrainedModel& trained) {
  TextTable table({"design", "R2", "runtime (s)"});
  for (const auto& eval :
       core::evaluateModel(*trained.model, *trained.split->testSet)) {
    table.addRow({eval.design, TextTable::num(eval.r2),
                  TextTable::num(eval.runtimeSeconds)});
  }
  std::printf("%s trained in %.1fs\n%s",
              core::strategyName(trained.strategy).c_str(),
              trained.stats.trainSeconds, table.render().c_str());
}

int cmdTrain(const Args& args) {
  const TrainedModel trained = trainOnPaperSplit(args);
  printEvalTable(trained);
  return 0;
}

int cmdExport(const Args& args) {
  const TrainedModel trained = trainOnPaperSplit(args);
  printEvalTable(trained);

  serve::BundleManifest manifest;
  manifest.strategy = core::strategyName(trained.strategy);
  manifest.targetNode = netlist::TechNode::k7nm;
  manifest.vocabularyNodes = trained.split->dataConfig.nodes;
  manifest.pinFeatureDim = trained.split->pipeline->featureDim();
  manifest.model = trained.config.model;
  manifest.model.imageResolution = trained.split->dataConfig.imageResolution;
  manifest.features = trained.split->dataConfig.features;

  const std::string outDir = args.flagOr("out", "dagt_bundle");
  serve::ModelBundle::save(*trained.model, manifest, outDir);
  std::printf("exported %s bundle to %s/\n",
              core::strategyName(trained.strategy).c_str(), outDir.c_str());

  if (args.has("emit")) {
    const std::string emitDir = args.flagOr("emit", "designs");
    std::filesystem::create_directories(emitDir);
    std::set<netlist::TechNode> nodesSeen;
    for (const auto& design : trained.split->test) {
      const auto base = std::filesystem::path(emitDir) / design.name;
      netlist::io::writeNetlistFile(design.netlist,
                                    base.string() + ".dagtnl");
      serve::writePlacementFile(design.placement, base.string() + ".dagtpl");
      nodesSeen.insert(design.node);
    }
    for (const auto node : nodesSeen) {
      const auto libPath = std::filesystem::path(emitDir) /
                           (netlist::techNodeName(node) + ".dagtlib");
      netlist::io::writeLibraryFile(trained.split->pipeline->library(node),
                                    libPath.string());
    }
    std::printf("emitted %zu test designs to %s/\n",
                trained.split->test.size(), emitDir.c_str());
  }
  return 0;
}

int cmdPredict(const Args& args) {
  if (args.positional.size() < 3) return usage();
  const std::string bundleDir = args.positional[0];
  const std::string nlPath = args.positional[1];
  const std::string libPath = args.positional[2];

  serve::EngineConfig config;
  config.maxBatch =
      static_cast<std::int64_t>(args.floatFlag("batch", 64.0f));
  config.maxWaitUs =
      static_cast<std::int64_t>(args.floatFlag("wait-us", 200.0f));
  serve::PredictionEngine engine(config);
  engine.addBundleFromDir(bundleDir);

  const std::int64_t numEndpoints = engine.loadDesign(
      "design", nlPath, libPath, args.flagOr("pl", ""));
  std::printf("loaded %s: %lld endpoints (node %s, %s bundle)\n",
              nlPath.c_str(), static_cast<long long>(numEndpoints),
              netlist::techNodeName(engine.nodes().front()).c_str(),
              engine.manifest(engine.nodes().front()).strategy.c_str());

  if (args.has("endpoints")) {
    std::vector<std::int64_t> endpoints;
    std::stringstream ss(args.flagOr("endpoints", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      const std::int64_t e = std::strtoll(item.c_str(), &end, 10);
      DAGT_CHECK_MSG(end != item.c_str() && *end == '\0',
                     "--endpoints: '" << item << "' is not an integer");
      endpoints.push_back(e);
    }
    DAGT_CHECK_MSG(!endpoints.empty(), "--endpoints list is empty");
    const auto arrivals = engine.predictEndpoints("design", endpoints);
    TextTable table({"endpoint", "predicted arrival (ps)"});
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      table.addRow({std::to_string(endpoints[i]),
                    TextTable::num(arrivals[i], 1)});
    }
    std::printf("%s", table.render().c_str());
  } else {
    const auto arrivals = engine.predictDesign("design");
    float worst = 0.0f;
    std::int64_t worstIdx = 0;
    double mean = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      mean += arrivals[i];
      if (arrivals[i] > worst) {
        worst = arrivals[i];
        worstIdx = static_cast<std::int64_t>(i);
      }
    }
    if (!arrivals.empty()) mean /= static_cast<double>(arrivals.size());
    std::printf("predicted sign-off arrival: mean %.1f ps, worst %.1f ps "
                "(endpoint %lld)\n",
                mean, worst, static_cast<long long>(worstIdx));
    if (args.has("dump")) {
      TextTable table({"endpoint", "predicted arrival (ps)"});
      for (std::size_t i = 0; i < arrivals.size(); ++i) {
        table.addRow({std::to_string(i), TextTable::num(arrivals[i], 1)});
      }
      std::printf("%s", table.render().c_str());
    }
  }

  const auto metrics = engine.metrics();
  std::printf("%s", metrics.renderTable().c_str());
  if (args.has("metrics-json")) {
    writeJsonFile(metrics.toJson(), args.flagOr("metrics-json", ""));
  }
  return 0;
}

int cmdWhatif(const Args& args) {
  if (args.positional.size() < 3) return usage();
  const std::string bundleDir = args.positional[0];
  const std::string nlPath = args.positional[1];
  const std::string libPath = args.positional[2];

  // The netlist must resolve against the same deterministic per-node
  // library the engine's FeatureService reconstructs (cell-type ids feed
  // the gate-type one-hot). Declared before the engine so every netlist
  // copy the serving stack retains dies first.
  const auto fileLib = netlist::io::readLibraryFile(libPath);
  const auto lib = netlist::CellLibrary::makeNode(fileLib.node());

  serve::PredictionEngine engine;
  engine.addBundleFromDir(bundleDir);
  auto nl = netlist::io::readNetlistFile(nlPath, lib);

  place::PlacementResult placement;
  if (args.has("pl")) {
    placement = serve::readPlacementFile(args.flagOr("pl", ""));
  } else {
    Rect die{{0, 0}, {0, 0}};
    for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
      die.expand(nl.pinLocation(p));
    }
    placement.dieArea = die;
  }

  whatif::WhatIfSession session(engine, "design", std::move(nl),
                                fileLib.node(), placement);
  std::printf("loaded %s: %lld endpoints, %lld cells, %lld nets (node %s, "
              "%s bundle)\n",
              nlPath.c_str(), static_cast<long long>(session.numEndpoints()),
              static_cast<long long>(session.netlist().numCells()),
              static_cast<long long>(session.netlist().numNets()),
              netlist::techNodeName(engine.nodes().front()).c_str(),
              engine.manifest(engine.nodes().front()).strategy.c_str());

  int failures = 0;
  if (args.has("edits")) {
    const std::string editsPath = args.flagOr("edits", "");
    std::ifstream in(editsPath);
    DAGT_CHECK_MSG(in.good(), "cannot open edit file " << editsPath);
    failures = whatif::runScript(session, in, std::cout, /*echo=*/true);
  }
  if (args.has("repl") || !args.has("edits")) {
    whatif::runRepl(session, std::cin, std::cout);
  }

  const auto metrics = session.metrics();
  std::printf("%s", metrics.renderTable().c_str());
  if (args.has("metrics-json")) {
    writeJsonFile(metrics.toJson(), args.flagOr("metrics-json", ""));
  }
  if (failures > 0) {
    std::fprintf(stderr, "whatif: %d command(s) failed\n", failures);
    return 1;
  }
  return 0;
}

int cmdFleet(const Args& args) {
  if (args.positional.size() < 3) return usage();
  const std::string bundleDir = args.positional[0];
  const std::string nlPath = args.positional[1];
  const std::string libPath = args.positional[2];

  fleet::FleetConfig config = args.has("config")
                                  ? fleet::FleetConfig::fromFile(
                                        args.flagOr("config", ""))
                                  : fleet::FleetConfig::fromEnv();
  if (args.has("shards")) {
    config.shards =
        static_cast<std::int32_t>(args.floatFlag("shards", 2.0f));
  }
  if (args.has("replication")) {
    config.replication =
        static_cast<std::int32_t>(args.floatFlag("replication", 1.0f));
  }

  // Same library discipline as `dagt whatif`: the netlist must resolve
  // against the deterministic per-node library the shards' feature
  // services reconstruct.
  const auto fileLib = netlist::io::readLibraryFile(libPath);
  const auto lib = netlist::CellLibrary::makeNode(fileLib.node());
  auto nl = netlist::io::readNetlistFile(nlPath, lib);

  place::PlacementResult placement;
  if (args.has("pl")) {
    placement = serve::readPlacementFile(args.flagOr("pl", ""));
  } else {
    Rect die{{0, 0}, {0, 0}};
    for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
      die.expand(nl.pinLocation(p));
    }
    placement.dieArea = die;
  }

  fleet::ShardRouter router(config);
  router.addBundleFromDir(bundleDir);
  const std::int64_t numEndpoints = router.loadDesign(
      "design", std::move(nl), fileLib.node(), placement);
  std::string owners;
  for (const std::int32_t owner : router.ownersOf("design")) {
    if (!owners.empty()) owners += ",";
    owners += std::to_string(owner);
  }
  std::printf("loaded %s: %lld endpoints on %d shard(s), owner(s) [%s] "
              "(node %s, replication %d)\n",
              nlPath.c_str(), static_cast<long long>(numEndpoints),
              router.shardCount(), owners.c_str(),
              netlist::techNodeName(fileLib.node()).c_str(),
              config.replication);

  if (args.has("endpoints")) {
    std::vector<std::int64_t> endpoints;
    std::stringstream ss(args.flagOr("endpoints", ""));
    std::string item;
    while (std::getline(ss, item, ',')) {
      char* end = nullptr;
      const std::int64_t e = std::strtoll(item.c_str(), &end, 10);
      DAGT_CHECK_MSG(end != item.c_str() && *end == '\0',
                     "--endpoints: '" << item << "' is not an integer");
      endpoints.push_back(e);
    }
    DAGT_CHECK_MSG(!endpoints.empty(), "--endpoints list is empty");
    const auto arrivals = router.predictEndpoints("design", endpoints);
    TextTable table({"endpoint", "predicted arrival (ps)"});
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
      table.addRow({std::to_string(endpoints[i]),
                    TextTable::num(arrivals[i], 1)});
    }
    std::printf("%s", table.render().c_str());
  } else {
    // Routed smoke: single-endpoint queries round-robin over the design,
    // then a full-design prediction for the summary line.
    const std::int64_t smoke =
        static_cast<std::int64_t>(args.floatFlag("requests", 32.0f));
    std::uint64_t shed = 0;
    for (std::int64_t i = 0; i < smoke; ++i) {
      try {
        (void)router.predictEndpoint("design", i % numEndpoints);
      } catch (const fleet::OverloadShedError&) {
        ++shed;
      }
    }
    const auto arrivals = router.predictDesign("design");
    float worst = 0.0f;
    std::int64_t worstIdx = 0;
    double mean = 0.0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      mean += arrivals[i];
      if (arrivals[i] > worst) {
        worst = arrivals[i];
        worstIdx = static_cast<std::int64_t>(i);
      }
    }
    if (!arrivals.empty()) mean /= static_cast<double>(arrivals.size());
    std::printf("%lld routed queries (%llu shed); predicted sign-off "
                "arrival: mean %.1f ps, worst %.1f ps (endpoint %lld)\n",
                static_cast<long long>(smoke),
                static_cast<unsigned long long>(shed), mean, worst,
                static_cast<long long>(worstIdx));
  }

  const auto metrics = router.metrics();
  std::printf("%s", metrics.renderTable().c_str());
  if (args.has("metrics-json")) {
    writeJsonFile(metrics.toJson(), args.flagOr("metrics-json", ""));
  }
  return 0;
}

/// Parse argv for the named subcommand and run it. argv[1] must be the
/// command; `trace` recurses through here for the wrapped command.
int dispatch(int argc, char** argv) {
  static const std::map<std::string,
                        std::pair<std::vector<std::string>, int (*)(const Args&)>>
      commands = {
          {"gen", {{"scale", "nl", "lib", "pl"}, cmdGen}},
          {"stats", {{}, cmdStats}},
          {"sta", {{"routed!"}, cmdSta}},
          {"opt", {{"out"}, cmdOpt}},
          {"train", {{"scale", "epochs", "strategy"}, cmdTrain}},
          {"export", {{"scale", "epochs", "strategy", "out", "emit"},
                      cmdExport}},
          {"predict", {{"pl", "endpoints", "batch", "wait-us", "dump!",
                        "metrics-json"},
                       cmdPredict}},
          {"whatif", {{"pl", "edits", "repl!", "metrics-json"}, cmdWhatif}},
          {"fleet", {{"pl", "config", "shards", "replication", "endpoints",
                      "requests", "metrics-json"},
                     cmdFleet}},
      };
  const std::string command = argv[1];
  const auto it = commands.find(command);
  if (it == commands.end()) return usage();
  const Args args = Args::parse(argc, argv, it->second.first);
  if (!args.error.empty()) {
    std::fprintf(stderr, "dagt %s: %s\n", command.c_str(),
                 args.error.c_str());
    return 2;
  }
  try {
    return it->second.second(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// `dagt trace <cmd> [args...] [--trace-out F]` — run any subcommand with
/// tracing runtime-enabled, then write the Chrome trace_event JSON (load
/// at chrome://tracing or ui.perfetto.dev) and print the self-time
/// profile plus span coverage of the measured wall time.
int cmdTrace(int argc, char** argv) {
#if !DAGT_TRACING
  std::fprintf(stderr,
               "dagt trace: this binary was built with -DDAGT_TRACING=OFF; "
               "rebuild with tracing compiled in\n");
  return 2;
#endif
  std::string traceOut = "dagt_trace.json";
  std::vector<char*> inner;
  inner.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dagt trace: --trace-out expects a value\n");
        return 2;
      }
      traceOut = argv[++i];
      continue;
    }
    if (token.rfind("--trace-out=", 0) == 0) {
      traceOut = token.substr(std::strlen("--trace-out="));
      continue;
    }
    inner.push_back(argv[i]);
  }
  if (inner.size() < 2) {
    std::fprintf(stderr,
                 "usage: dagt trace <command> [args...] [--trace-out F]\n");
    return 2;
  }

  obs::TraceRegistry& registry = obs::TraceRegistry::global();
  registry.setEnabled(true);
  const std::uint64_t wallStartNs = registry.nowNs();
  int rc;
  // Root span named after the wrapped command; the string must stay alive
  // until collect() below (span names are stored by pointer).
  const std::string rootName = std::string("cli/") + inner[1];
  {
    obs::ScopedSpan root(rootName.c_str());
    rc = dispatch(static_cast<int>(inner.size()), inner.data());
  }
  registry.setEnabled(false);
  const std::uint64_t wallNs = registry.nowNs() - wallStartNs;

  const obs::TraceSnapshot snapshot = registry.collect();
  try {
    writeJsonFile(obs::chromeTraceJson(snapshot), traceOut);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dagt trace: %s\n", e.what());
    return 1;
  }
  const double wallUs = static_cast<double>(wallNs) / 1000.0;
  std::printf("%s", obs::renderProfile(obs::profileRows(snapshot),
                                       wallUs).c_str());
  std::printf("trace: %zu events (%llu dropped) -> %s\n",
              snapshot.events.size(),
              static_cast<unsigned long long>(snapshot.dropped),
              traceOut.c_str());
  std::printf("span coverage: %.1f%% of %.1f ms wall\n",
              100.0 * obs::spanCoverage(snapshot, wallNs), wallUs / 1000.0);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::string(argv[1]) == "trace") return cmdTrace(argc, argv);
  return dispatch(argc, argv);
}
