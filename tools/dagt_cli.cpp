// dagt — command-line front end to the library.
//
//   dagt gen <design> [--scale S] [--nl out.dagtnl] [--lib out.dagtlib]
//       Generate a named suite design, map it to its node, place it and
//       write the netlist / library interchange files.
//
//   dagt stats <netlist.dagtnl> <lib.dagtlib>
//       Table-1 style statistics of a netlist file.
//
//   dagt sta <netlist.dagtnl> <lib.dagtlib> [--routed]
//       Static timing analysis: worst arrival, slack summary against an
//       auto-derived constraint, and the critical-path report.
//
//   dagt opt <netlist.dagtnl> <lib.dagtlib> [--out optimized.dagtnl]
//       Timing optimization (sizing + buffering); reports the improvement.
//
//   dagt train [--scale S] [--epochs E] [--strategy NAME]
//       Train a predictor on the paper's split and print test R^2 rows.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"
#include "netlist/io.hpp"
#include "place/layout_maps.hpp"
#include "place/placer.hpp"
#include "sta/sta_engine.hpp"
#include "sta/timing_optimizer.hpp"
#include "sta/timing_report.hpp"

namespace {

using namespace dagt;

/// Minimal flag parser: positional args plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 2; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          args.flags[key] = argv[++i];
        } else {
          args.flags[key] = "1";
        }
      } else {
        args.positional.push_back(token);
      }
    }
    return args;
  }

  std::string flagOr(const std::string& key, std::string fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  float floatFlag(const std::string& key, float fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::strtof(it->second.c_str(),
                                                      nullptr);
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

int usage() {
  std::fprintf(stderr,
               "usage: dagt <gen|stats|sta|opt|train> [args]\n"
               "run 'dagt' with a command to see its flags in the header "
               "of tools/dagt_cli.cpp\n");
  return 2;
}

int cmdGen(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string name = args.positional[0];
  const float scale = args.floatFlag("scale", 1.0f);

  const designgen::DesignSuite suite(scale);
  const auto& entry = suite.entry(name);
  const auto lib = netlist::CellLibrary::makeNode(entry.node);
  auto nl = suite.buildNetlist(entry, lib);
  const auto placement = place::Placer::place(nl);

  const std::string nlPath = args.flagOr("nl", name + ".dagtnl");
  const std::string libPath = args.flagOr(
      "lib", netlist::techNodeName(entry.node) + ".dagtlib");
  netlist::io::writeNetlistFile(nl, nlPath);
  netlist::io::writeLibraryFile(lib, libPath);
  const auto stats = nl.stats();
  std::printf("%s @ %s: %lld pins, %lld endpoints, die %.1fx%.1f um\n",
              name.c_str(), netlist::techNodeName(entry.node).c_str(),
              static_cast<long long>(stats.numPins),
              static_cast<long long>(stats.numEndpoints),
              placement.dieArea.width(), placement.dieArea.height());
  std::printf("wrote %s and %s\n", nlPath.c_str(), libPath.c_str());
  return 0;
}

int cmdStats(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  const auto nl = netlist::io::readNetlistFile(args.positional[0], lib);
  const auto s = nl.stats();
  TextTable table({"design", "tech node", "#pin", "#edp", "#e_n", "#e_c"});
  table.addRow({nl.name(), netlist::techNodeName(lib.node()),
                std::to_string(s.numPins), std::to_string(s.numEndpoints),
                std::to_string(s.numNetEdges),
                std::to_string(s.numCellEdges)});
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmdSta(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  const auto nl = netlist::io::readNetlistFile(args.positional[0], lib);

  sta::TimingResult timing;
  if (args.has("routed")) {
    // Routed model needs a congestion map; derive the die from locations.
    Rect die{{0, 0}, {0, 0}};
    for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
      die.expand(nl.pinLocation(p));
    }
    place::PlacementResult placement;
    placement.dieArea = die;
    const place::LayoutMaps maps(nl, placement, 32);
    timing = sta::StaEngine::run(
        nl, &maps, sta::RouteConfig{sta::WireModel::kRouted, 1.0f, 0.15f});
  } else {
    timing = sta::StaEngine::run(
        nl, nullptr,
        sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  }

  const auto constraints =
      sta::TimingConstraints::fromEstimate(timing.worstArrival);
  const auto slack = sta::computeSlack(nl, timing, constraints);
  std::printf("worst arrival %.1f ps over %zu endpoints\n",
              timing.worstArrival, slack.endpoints.size());
  std::printf("auto constraint: clock %.1f ps -> WNS %.1f ps, TNS %.1f ps, "
              "%lld violations\n",
              constraints.clockPeriod, slack.worstNegativeSlack,
              slack.totalNegativeSlack,
              static_cast<long long>(slack.violatingEndpoints));
  const auto path = sta::traceCriticalPath(nl, timing);
  std::printf("%s", sta::formatPathReport(nl, path).c_str());
  return 0;
}

int cmdOpt(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto lib = netlist::io::readLibraryFile(args.positional[1]);
  auto nl = netlist::io::readNetlistFile(args.positional[0], lib);

  Rect die{{0, 0}, {0, 0}};
  for (netlist::PinId p = 0; p < nl.numPins(); ++p) {
    die.expand(nl.pinLocation(p));
  }
  place::PlacementResult placement;
  placement.dieArea = die;
  const place::LayoutMaps maps(nl, placement, 32);
  const auto report = sta::TimingOptimizer::optimize(nl, maps);
  std::printf("resized %d cells, inserted %d buffers: worst arrival "
              "%.1f -> %.1f ps\n",
              report.cellsResized, report.buffersInserted,
              report.worstArrivalBefore, report.worstArrivalAfter);
  if (args.has("out")) {
    netlist::io::writeNetlistFile(nl, args.flagOr("out", "optimized.dagtnl"));
    std::printf("wrote %s\n", args.flagOr("out", "optimized.dagtnl").c_str());
  }
  return 0;
}

int cmdTrain(const Args& args) {
  Log::threshold() = LogLevel::kInfo;
  const float scale = args.floatFlag("scale", 0.5f);
  const int epochs = static_cast<int>(args.floatFlag("epochs", 24.0f));
  const std::string strategyName = args.flagOr("strategy", "ours");

  core::Strategy strategy = core::Strategy::kOurs;
  if (strategyName == "advonly") strategy = core::Strategy::kAdvOnly;
  else if (strategyName == "simplemerge") strategy = core::Strategy::kSimpleMerge;
  else if (strategyName == "paramshare") strategy = core::Strategy::kParamShare;
  else if (strategyName == "ptft") strategy = core::Strategy::kPretrainFinetune;
  else if (strategyName != "ours") {
    std::fprintf(stderr, "unknown strategy '%s'\n", strategyName.c_str());
    return 2;
  }

  features::DataConfig dataConfig;
  dataConfig.designScale = scale;
  const features::DataPipeline pipeline(dataConfig);
  std::vector<features::DesignData> train, test;
  for (const char* n :
       {"smallboom", "jpeg", "linkruncca", "spiMaster", "usbf_device"}) {
    train.push_back(pipeline.build(n));
  }
  for (const char* n : {"arm9", "chacha", "hwacha", "or1200", "sha3"}) {
    test.push_back(pipeline.build(n));
  }
  auto pointers = [](const std::vector<features::DesignData>& v) {
    std::vector<const features::DesignData*> p;
    for (const auto& d : v) p.push_back(&d);
    return p;
  };
  core::TimingDataset trainSet(pointers(train));
  const core::TimingDataset testSet(pointers(test));
  trainSet.restrictEndpoints(train.front(), 48, 99);

  core::TrainConfig config;
  config.epochs = epochs;
  config.learningRate = 5e-3f;
  const core::Trainer trainer(trainSet, config);
  core::TrainStats stats;
  auto model = trainer.train(strategy, &stats);

  TextTable table({"design", "R2", "runtime (s)"});
  for (const auto& eval : core::evaluateModel(*model, testSet)) {
    table.addRow({eval.design, TextTable::num(eval.r2),
                  TextTable::num(eval.runtimeSeconds)});
  }
  std::printf("%s trained in %.1fs\n%s", core::strategyName(strategy).c_str(),
              stats.trainSeconds, table.render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv);
  try {
    if (command == "gen") return cmdGen(args);
    if (command == "stats") return cmdStats(args);
    if (command == "sta") return cmdSta(args);
    if (command == "opt") return cmdOpt(args);
    if (command == "train") return cmdTrain(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
