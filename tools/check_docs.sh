#!/usr/bin/env bash
# Docs-drift checker (the `docs` stage of tools/verify.sh).
#
# The operator docs in docs/ promise to cover every exported metric and
# every trace span by name; this script makes that promise mechanical:
#
#   1. every JSON key emitted via .set("...") in src/serve/metrics.cpp
#      must appear (backticked) inside the GENERATED section of
#      docs/metrics-reference.md;
#   2. every span/instant name passed to DAGT_TRACE_SCOPE/INSTANT in
#      src/, tools/ and bench/ (tests and lint fixtures are exempt) must
#      appear (backticked) in docs/observability.md;
#   3. every kernel dispatch tier named in kTierNames
#      (src/tensor/kernels/dispatch.cpp), every DAGT_* CMake option /
#      cache variable and every DAGT_* environment variable read via
#      getenv (or the benches' envOr helper), and every bench_* target in
#      bench/CMakeLists.txt must appear (backticked) in
#      docs/performance.md;
#   4. every what-if edit command in the canonical table of
#      src/whatif/edit_script.cpp (between the DOCS:WHATIF_COMMANDS
#      markers) must appear (backticked) in docs/whatif.md;
#   5. every dagt-analyze pass id in the canonical table of
#      tools/dagt_analyze/passes.cpp (between the DOCS:ANALYZE_PASSES
#      markers) must appear (backticked) in docs/static-analysis.md;
#   6. the fleet operations handbook: every DAGT_FLEET_* env knob and
#      every fleet/* trace span must appear (backticked) in docs/fleet.md,
#      and every JSON key emitted via .set("...") in src/fleet/*.cpp must
#      appear inside the GENERATED fleet-metrics-keys section of
#      docs/metrics-reference.md;
#   7. the retrieval operator handbook: every DAGT_RETRIEVAL* env knob,
#      every retrieval/* trace span, and every retrieval_* metric key
#      emitted by src/serve/metrics.cpp must appear (backticked) in
#      docs/retrieval.md — the handbook re-documents its own slice of the
#      global lists, so an operator never leaves the page to decode a
#      counter or a knob.
#
# Span and env-var extraction prefers `dagt_analyze --dump spans|env` when
# the binary has been built: the analyzer lexes the sources, so names that
# appear only inside comments or disabled code do not pollute the check.
# The grep fallback (fresh checkout, no build tree yet) drops full-line
# comments but cannot see nuance beyond that.
#
# Adding a metric, span, tier, knob or bench without documenting it fails
# verify. Exits non-zero with one line per missing name.
#
# `--selftest` runs the negative mode instead: phantom names are injected
# into every extracted list and the script asserts each one is reported
# missing — proof the checkers actually fire, not just that the docs
# happen to be in sync.

set -u
cd "$(dirname "$0")/.."

SELFTEST=0
[[ "${1:-}" == "--selftest" ]] && SELFTEST=1

ANALYZER=build/tools/dagt_analyze/dagt_analyze
[[ -x "$ANALYZER" ]] || ANALYZER=""

MISSING=0
MISSED_NAMES=""

miss() {
  echo "check_docs: $1"
  MISSING=1
  MISSED_NAMES="$MISSED_NAMES
$1"
}

# --- 1. serve metrics keys -> docs/metrics-reference.md -------------------

REF=docs/metrics-reference.md
if [[ ! -f "$REF" ]]; then
  miss "$REF does not exist"
else
  grep -q 'BEGIN GENERATED: serve-metrics-keys' "$REF" &&
    grep -q 'END GENERATED: serve-metrics-keys' "$REF" ||
    miss "$REF lost its GENERATED section markers"

  # The cross-checked region only (so prose elsewhere can't satisfy a key).
  SECTION=$(sed -n '/BEGIN GENERATED: serve-metrics-keys/,/END GENERATED: serve-metrics-keys/p' "$REF")

  KEYS=$(grep -ho '\.set("[A-Za-z0-9_]*"' src/serve/metrics.cpp src/serve/metrics.hpp 2>/dev/null |
    sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
  [[ -n "$KEYS" ]] || miss "no .set(\"...\") keys found in src/serve/metrics.* (extraction broke?)"

  for key in $KEYS; do
    # Documented = the key appears inside backticks in the generated
    # section (alone, or as a path segment like `trace_spans.<name>.count`).
    if ! grep -qE "\`([^\`]*[^A-Za-z0-9_])?${key}([^A-Za-z0-9_][^\`]*)?\`" <<<"$SECTION"; then
      miss "metric key '${key}' (src/serve/metrics.cpp) is not documented in $REF"
    fi
  done
fi

# --- 2. trace span names -> docs/observability.md -------------------------

OBS=docs/observability.md
if [[ ! -f "$OBS" ]]; then
  miss "$OBS does not exist"
else
  if [[ -n "$ANALYZER" ]]; then
    SPANS=$("$ANALYZER" --dump spans .)
  else
    SPANS=$(grep -rhE 'DAGT_TRACE_(SCOPE|INSTANT)\("[^"]+"' src tools bench |
      grep -vE '^[[:space:]]*//' |
      grep -oE 'DAGT_TRACE_(SCOPE|INSTANT)\("[^"]+"' |
      sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
  fi
  [[ -n "$SPANS" ]] || miss "no DAGT_TRACE_* names found under src/ tools/ bench/ (extraction broke?)"

  for span in $SPANS; do
    if ! grep -qF "\`${span}\`" "$OBS"; then
      miss "span '${span}' is not documented in $OBS"
    fi
  done
fi

# --- 3. performance knobs -> docs/performance.md --------------------------

PERF=docs/performance.md

# Kernel dispatch tiers, from the canonical kTierNames initializer.
TIERS=$(sed -n '/kTierNames\[kTierCount\]/,/};/p' src/tensor/kernels/dispatch.cpp |
  grep -o '"[a-z0-9_]*"' | tr -d '"' | sort -u)
[[ -n "$TIERS" ]] || miss "no tier names found in src/tensor/kernels/dispatch.cpp (extraction broke?)"

# DAGT_* CMake options / cache variables (any CMakeLists.txt in the tree).
OPTIONS=$(grep -rhoE '(option|set)\(DAGT_[A-Z_]+' --include=CMakeLists.txt . |
  sed 's/.*(//' | sort -u)
[[ -n "$OPTIONS" ]] || miss "no DAGT_* CMake options found (extraction broke?)"

# DAGT_* environment variables read at runtime — directly via getenv or
# through the benches' envOr("DAGT_...", fallback) helper.
if [[ -n "$ANALYZER" ]]; then
  ENVVARS=$("$ANALYZER" --dump env .)
else
  ENVVARS=$(grep -rhE '(getenv|envOr)\("DAGT_[A-Z_]+"' src tools bench |
    grep -vE '^[[:space:]]*//' |
    grep -oE '(getenv|envOr)\("DAGT_[A-Z_]+"' |
    sed 's/.*"\(DAGT_[A-Z_]*\)".*/\1/' | sort -u)
fi
[[ -n "$ENVVARS" ]] || miss "no getenv(\"DAGT_*\") env vars found under src/ tools/ bench/ (extraction broke?)"

# Benchmark targets: declared via the dagt_bench() macro or directly with
# add_executable(bench_...) — both spellings exist in bench/CMakeLists.txt.
BENCHES=$(grep -hoE '(dagt_bench|add_executable)\(bench_[a-z0-9_]+' bench/CMakeLists.txt |
  sed 's/.*(//' | sort -u)
[[ -n "$BENCHES" ]] || miss "no bench_* targets found in bench/CMakeLists.txt (extraction broke?)"

if [[ "$SELFTEST" == 1 ]]; then
  # Inject one phantom name per list; each must surface as a miss below,
  # otherwise that checker is dead and would let real drift through.
  TIERS="$TIERS
phantom_tier_zz"
  OPTIONS="$OPTIONS
DAGT_PHANTOM_OPTION"
  ENVVARS="$ENVVARS
DAGT_PHANTOM_ENV"
  BENCHES="$BENCHES
bench_phantom_target"
fi

if [[ ! -f "$PERF" ]]; then
  miss "$PERF does not exist"
else
  for tier in $TIERS; do
    grep -qF "\`${tier}\`" "$PERF" ||
      miss "kernel tier '${tier}' (src/tensor/kernels/dispatch.cpp) is not documented in $PERF"
  done
  for opt in $OPTIONS; do
    grep -qF "\`${opt}\`" "$PERF" ||
      miss "CMake knob '${opt}' is not documented in $PERF"
  done
  for var in $ENVVARS; do
    grep -qF "\`${var}\`" "$PERF" ||
      miss "env var '${var}' is not documented in $PERF"
  done
  for b in $BENCHES; do
    grep -qF "\`${b}\`" "$PERF" ||
      miss "bench target '${b}' is not documented in $PERF"
  done
fi

# --- 4. what-if edit commands -> docs/whatif.md ---------------------------

WIF=docs/whatif.md

# Command names from the canonical table in edit_script.cpp (the same table
# drives the script parser, the REPL and `help`, so the docs track all three).
CMDS=$(sed -n '/DOCS:WHATIF_COMMANDS_BEGIN/,/DOCS:WHATIF_COMMANDS_END/p' \
  src/whatif/edit_script.cpp |
  grep -oE '\{"[a-z]+"' | tr -d '{"' | sort -u)
[[ -n "$CMDS" ]] || miss "no what-if commands found in src/whatif/edit_script.cpp (extraction broke?)"

if [[ "$SELFTEST" == 1 ]]; then
  CMDS="$CMDS
phantomcmd"
fi

if [[ ! -f "$WIF" ]]; then
  miss "$WIF does not exist"
else
  for cmd in $CMDS; do
    grep -qF "\`${cmd}\`" "$WIF" ||
      miss "what-if command '${cmd}' (src/whatif/edit_script.cpp) is not documented in $WIF"
  done
fi

# --- 5. dagt-analyze pass ids -> docs/static-analysis.md -------------------

SAN=docs/static-analysis.md

# Pass ids from the canonical table in passes.cpp (the same table drives
# the pass engine, `--dump passes` and the findings JSON).
PASSES=$(sed -n '/DOCS:ANALYZE_PASSES_BEGIN/,/DOCS:ANALYZE_PASSES_END/p' \
  tools/dagt_analyze/passes.cpp |
  grep -oE '\{"[a-z-]+"' | tr -d '{"' | sort -u)
[[ -n "$PASSES" ]] || miss "no pass ids found in tools/dagt_analyze/passes.cpp (extraction broke?)"

if [[ "$SELFTEST" == 1 ]]; then
  PASSES="$PASSES
phantom-pass-zz"
fi

if [[ ! -f "$SAN" ]]; then
  miss "$SAN does not exist"
else
  for pass in $PASSES; do
    grep -qF "\`${pass}\`" "$SAN" ||
      miss "analyzer pass '${pass}' (tools/dagt_analyze/passes.cpp) is not documented in $SAN"
  done
fi

# --- 6. fleet knobs, spans and metric keys -> docs/fleet.md ----------------

FLEET=docs/fleet.md

# The fleet handbook re-documents its own slice of the global lists (which
# sections 2 and 3 already check against the general docs): the DAGT_FLEET_*
# env knobs and the fleet/* spans.
FLEETENVS=$(grep -E '^DAGT_FLEET_' <<<"${ENVVARS:-}" | sort -u)
[[ -n "$FLEETENVS" ]] || miss "no DAGT_FLEET_* env knobs found (extraction broke?)"

FLEETSPANS=$(grep -E '^fleet/' <<<"${SPANS:-}" | sort -u)
[[ -n "$FLEETSPANS" ]] || miss "no fleet/* trace spans found (extraction broke?)"

FLEETKEYS=$(grep -ho '\.set("[A-Za-z0-9_]*"' src/fleet/*.cpp 2>/dev/null |
  sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
[[ -n "$FLEETKEYS" ]] || miss "no .set(\"...\") keys found in src/fleet/*.cpp (extraction broke?)"

if [[ "$SELFTEST" == 1 ]]; then
  FLEETENVS="$FLEETENVS
DAGT_FLEET_PHANTOM_KNOB"
  FLEETSPANS="$FLEETSPANS
fleet/phantom_span"
  FLEETKEYS="$FLEETKEYS
fleet_phantom_key"
fi

if [[ ! -f "$FLEET" ]]; then
  miss "$FLEET does not exist"
else
  for var in $FLEETENVS; do
    grep -qF "\`${var}\`" "$FLEET" ||
      miss "fleet knob '${var}' is not documented in $FLEET"
  done
  for span in $FLEETSPANS; do
    grep -qF "\`${span}\`" "$FLEET" ||
      miss "fleet span '${span}' is not documented in $FLEET"
  done
fi

if [[ -f "$REF" ]]; then
  grep -q 'BEGIN GENERATED: fleet-metrics-keys' "$REF" &&
    grep -q 'END GENERATED: fleet-metrics-keys' "$REF" ||
    miss "$REF lost its fleet-metrics-keys GENERATED section markers"
  FLEETSECTION=$(sed -n '/BEGIN GENERATED: fleet-metrics-keys/,/END GENERATED: fleet-metrics-keys/p' "$REF")
  for key in $FLEETKEYS; do
    if ! grep -qE "\`([^\`]*[^A-Za-z0-9_])?${key}([^A-Za-z0-9_][^\`]*)?\`" <<<"$FLEETSECTION"; then
      miss "fleet metric key '${key}' (src/fleet/) is not documented in $REF"
    fi
  done
fi

# --- 7. retrieval knobs, spans and metric keys -> docs/retrieval.md --------

RETR=docs/retrieval.md

# Like the fleet handbook, the retrieval handbook re-documents its slice
# of the global lists (sections 1-3 already check them against the general
# docs): DAGT_RETRIEVAL* knobs, retrieval/* spans, retrieval_* metrics.
RETRENVS=$(grep -E '^DAGT_RETRIEVAL' <<<"${ENVVARS:-}" | sort -u)
[[ -n "$RETRENVS" ]] || miss "no DAGT_RETRIEVAL* env knobs found (extraction broke?)"

RETRSPANS=$(grep -E '^retrieval/' <<<"${SPANS:-}" | sort -u)
[[ -n "$RETRSPANS" ]] || miss "no retrieval/* trace spans found (extraction broke?)"

RETRKEYS=$(grep -ho '\.set("retrieval_[A-Za-z0-9_]*"' src/serve/metrics.cpp 2>/dev/null |
  sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
[[ -n "$RETRKEYS" ]] || miss "no retrieval_* metric keys found in src/serve/metrics.cpp (extraction broke?)"

if [[ "$SELFTEST" == 1 ]]; then
  RETRENVS="$RETRENVS
DAGT_RETRIEVAL_PHANTOM_KNOB"
  RETRSPANS="$RETRSPANS
retrieval/phantom_span"
  RETRKEYS="$RETRKEYS
retrieval_phantom_key"
fi

if [[ ! -f "$RETR" ]]; then
  miss "$RETR does not exist"
else
  for var in $RETRENVS; do
    grep -qF "\`${var}\`" "$RETR" ||
      miss "retrieval knob '${var}' is not documented in $RETR"
  done
  for span in $RETRSPANS; do
    grep -qF "\`${span}\`" "$RETR" ||
      miss "retrieval span '${span}' is not documented in $RETR"
  done
  for key in $RETRKEYS; do
    grep -qF "\`${key}\`" "$RETR" ||
      miss "retrieval metric key '${key}' (src/serve/metrics.cpp) is not documented in $RETR"
  done
fi

# --- verdict ---------------------------------------------------------------

if [[ "$SELFTEST" == 1 ]]; then
  rc=0
  for phantom in phantom_tier_zz DAGT_PHANTOM_OPTION DAGT_PHANTOM_ENV \
    bench_phantom_target phantomcmd phantom-pass-zz \
    DAGT_FLEET_PHANTOM_KNOB fleet/phantom_span fleet_phantom_key \
    DAGT_RETRIEVAL_PHANTOM_KNOB retrieval/phantom_span \
    retrieval_phantom_key; do
    case "$MISSED_NAMES" in
      *"'${phantom}'"*) ;;
      *)
        echo "check_docs: SELFTEST FAILED — phantom '${phantom}' was not flagged"
        rc=1
        ;;
    esac
  done
  if [[ "$rc" == 0 ]]; then
    echo "check_docs: selftest ok — all phantom names were flagged"
  fi
  exit "$rc"
fi

if [[ "$MISSING" != 0 ]]; then
  echo "check_docs: FAILED — update docs/ to match the source (or vice versa)"
  exit 1
fi
echo "check_docs: docs are in sync with the source"
