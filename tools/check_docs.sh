#!/usr/bin/env bash
# Docs-drift checker (the `docs` stage of tools/verify.sh).
#
# The operator docs in docs/ promise to cover every exported metric and
# every trace span by name; this script makes that promise mechanical:
#
#   1. every JSON key emitted via .set("...") in src/serve/metrics.cpp
#      must appear (backticked) inside the GENERATED section of
#      docs/metrics-reference.md;
#   2. every span/instant name passed to DAGT_TRACE_SCOPE/INSTANT in
#      src/, tools/ and bench/ (tests and lint fixtures are exempt) must
#      appear (backticked) in docs/observability.md.
#
# Adding a metric or a span without documenting it fails verify. Exits
# non-zero with one line per missing name.

set -u
cd "$(dirname "$0")/.."

MISSING=0

miss() {
  echo "check_docs: $1"
  MISSING=1
}

# --- 1. serve metrics keys -> docs/metrics-reference.md -------------------

REF=docs/metrics-reference.md
if [[ ! -f "$REF" ]]; then
  miss "$REF does not exist"
else
  grep -q 'BEGIN GENERATED: serve-metrics-keys' "$REF" &&
    grep -q 'END GENERATED: serve-metrics-keys' "$REF" ||
    miss "$REF lost its GENERATED section markers"

  # The cross-checked region only (so prose elsewhere can't satisfy a key).
  SECTION=$(sed -n '/BEGIN GENERATED: serve-metrics-keys/,/END GENERATED: serve-metrics-keys/p' "$REF")

  KEYS=$(grep -ho '\.set("[A-Za-z0-9_]*"' src/serve/metrics.cpp src/serve/metrics.hpp 2>/dev/null |
    sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
  [[ -n "$KEYS" ]] || miss "no .set(\"...\") keys found in src/serve/metrics.* (extraction broke?)"

  for key in $KEYS; do
    # Documented = the key appears inside backticks in the generated
    # section (alone, or as a path segment like `trace_spans.<name>.count`).
    if ! grep -qE "\`([^\`]*[^A-Za-z0-9_])?${key}([^A-Za-z0-9_][^\`]*)?\`" <<<"$SECTION"; then
      miss "metric key '${key}' (src/serve/metrics.cpp) is not documented in $REF"
    fi
  done
fi

# --- 2. trace span names -> docs/observability.md -------------------------

OBS=docs/observability.md
if [[ ! -f "$OBS" ]]; then
  miss "$OBS does not exist"
else
  SPANS=$(grep -rhoE 'DAGT_TRACE_(SCOPE|INSTANT)\("[^"]+"' src tools bench |
    sed 's/.*("\([^"]*\)".*/\1/' | sort -u)
  [[ -n "$SPANS" ]] || miss "no DAGT_TRACE_* names found under src/ tools/ bench/ (extraction broke?)"

  for span in $SPANS; do
    if ! grep -qF "\`${span}\`" "$OBS"; then
      miss "span '${span}' is not documented in $OBS"
    fi
  done
fi

if [[ "$MISSING" != 0 ]]; then
  echo "check_docs: FAILED — update docs/ to match the source (or vice versa)"
  exit 1
fi
echo "check_docs: docs are in sync with the source"
