#!/usr/bin/env bash
# Full correctness matrix for the repo, one line of output per stage:
#
#   default   RelWithDebInfo build + complete ctest suite (DAGT_CHECKS on)
#   lint      dagt-lint over the checkout (ctest -L lint)
#   analyze   dagt-analyze cross-TU passes (lock-order, pooled lifetime,
#             contract drift) over the checkout against the committed
#             baseline, plus the per-pass fixture self-tests (ctest -L
#             analyze)
#   docs      tools/check_docs.sh (+ --selftest) — docs/ in sync with
#             metrics keys, span names, kernel tiers, DAGT_* knobs, benches
#   bench     bench_micro_ops smoke run + BENCH JSON validation (tier table)
#   fusion    bench_fusion smoke run — fused-vs-unfused bitwise parity,
#             >= 1.2x interactive-forward speedup, <= 3 allocs/predict
#   asan      ASan/UBSan build, tensor + concurrency suites
#   tsan      ThreadSanitizer build, concurrency stress suite
#   obs       ThreadSanitizer build, tracing-layer suite (dagt_obs_tests)
#   whatif    ThreadSanitizer build of the what-if suite + bench_whatif
#             smoke (short edit stream, parity + 5x refresh-speedup gate)
#   fleet     ThreadSanitizer build of the fleet router suite + bench_fleet
#             smoke (2-shard saturation run: routed-vs-direct bitwise
#             parity, >= 1.5x 1->2 shard scaling, JSON schema validated)
#   retrieval ThreadSanitizer build of the learned-prediction-cache suite
#             (insert-during-query stress) + bench_retrieval smoke (short
#             revision stream: cache-off bitwise parity, >= 1.3x speedup,
#             in-budget hit accuracy, JSON schema validated)
#
# Usage: tools/verify.sh [--fast]
#   --fast skips the sanitizer stages (default + lint + analyze + docs +
#   bench only).
#
# Each sanitizer preset gets its own build tree (build-asan/, build-tsan/) —
# the runtimes are mutually exclusive, and CMake enforces that (see
# DAGT_SANITIZE in the top-level CMakeLists.txt). Exits non-zero if any
# stage fails; stage logs land in build*/verify-<stage>.log.

set -u
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAILED=0

stage() {
  local name="$1" log="$2"
  shift 2
  local start rc
  start=$(date +%s)
  if "$@" >"$log" 2>&1; then
    rc=ok
  else
    rc=FAIL
    FAILED=1
  fi
  printf '%-8s %-4s %4ss  %s\n' "$name" "$rc" "$(($(date +%s) - start))" "$log"
}

run_default() {
  cmake -B build -S . &&
    cmake --build build -j "$JOBS" &&
    ctest --test-dir build --output-on-failure -j 2
}

run_lint() {
  ctest --test-dir build -L lint --output-on-failure
}

# The analyze label covers both halves of dagt-analyze: analyze.repo (the
# binary over the checkout, gated on tools/dagt_analyze/baseline.json) and
# dagt_analyze_tests (seeded-violation/clean-twin fixtures per pass plus
# the golden fact-extraction dump).
run_analyze() {
  ctest --test-dir build -L analyze --output-on-failure
}

run_asan() {
  cmake -B build-asan -S . -DDAGT_SANITIZE="address;undefined" &&
    cmake --build build-asan -j "$JOBS" \
      --target dagt_tensor_tests dagt_concurrency_tests &&
    ./build-asan/tests/dagt_tensor_tests &&
    ./build-asan/tests/dagt_concurrency_tests
}

run_tsan() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_concurrency_tests &&
    ./build-tsan/tests/dagt_concurrency_tests
}

# Shares build-tsan with run_tsan: the tracing hot path (span emission vs
# collect/aggregate/setEnabled) is a concurrency surface, so the obs suite
# runs under ThreadSanitizer, not just the default build.
run_obs() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_obs_tests &&
    ./build-tsan/tests/dagt_obs_tests
}

# What-if service: the session/cone suite runs under ThreadSanitizer (the
# reader/writer stress is the point), then a short bench_whatif stream
# checks the incremental path end-to-end on the default tree — bitwise
# prediction parity with a cold rebuild after every edit, and a median
# incremental-vs-full-refresh speedup of at least 5x (the full bench's
# default gate is 10x; the smoke stream is short, so the gate is looser).
run_whatif() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_whatif_tests &&
    ./build-tsan/tests/dagt_whatif_tests &&
    cmake --build build -j "$JOBS" --target bench_whatif &&
    rm -rf build/whatif-smoke && mkdir -p build/whatif-smoke &&
    DAGT_BENCH_DIR=build/whatif-smoke \
      DAGT_WHATIF_EDITS=8 DAGT_WHATIF_MIN_SPEEDUP=5 \
      ./build/bench/bench_whatif
}

# Fleet: the router suite (parity, failover, shed, hedge, rebalance
# stress) runs under ThreadSanitizer, then a short bench_fleet run on the
# default tree checks the scale-out story end-to-end — bitwise parity
# routed vs direct and 1->2 shard scaling. The full bench gates at 1.7x;
# the smoke run is short, so its gate is looser (1.5x).
run_fleet() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_fleet_tests &&
    ./build-tsan/tests/dagt_fleet_tests &&
    cmake --build build -j "$JOBS" --target bench_fleet &&
    rm -rf build/fleet-smoke && mkdir -p build/fleet-smoke &&
    DAGT_BENCH_DIR=build/fleet-smoke \
      DAGT_FLEET_REQUESTS=16 DAGT_FLEET_MIN_SCALING=1.5 \
      ./build/bench/bench_fleet &&
    python3 - <<'EOF'
import json
doc = json.load(open("build/fleet-smoke/BENCH_fleet.json"))
assert doc["parity_bitwise"], "routed prediction != direct engine"
assert doc["scaling"] >= 1.5, f"1->2 shard scaling {doc['scaling']:.2f}x < 1.5x"
assert doc["one_shard_shed_rate"] > 0, "1-shard overload run never shed"
assert len(doc["degradation"]) >= 3, "degradation curve too short"
for row in doc["degradation"]:
    assert row["qps"] > 0 and row["p99_us"] >= row["p50_us"]
shards = doc["fleet_metrics"]["fleet_per_shard"]
assert len(shards) == 2, f"expected 2 shards in metrics, got {len(shards)}"
print(f"fleet-smoke: ok ({doc['scaling']:.2f}x scaling, "
      f"shed rate {doc['one_shard_shed_rate']:.2f})")
EOF
}

# Learned prediction cache: the retrieval suite runs under ThreadSanitizer
# (the EmbeddingIndex insert-during-query stress and the engine cache
# sharing are the point), then a short bench_retrieval revision stream on
# the default tree checks the cache end-to-end — miss-path bitwise parity
# with the cache-off engine, uncertainty-gated hits within the error
# budget, and an effective-QPS speedup. The full bench gates at 2x; the
# smoke stream is short (embed memo amortizes over fewer rounds), so its
# gate is looser (1.3x).
run_retrieval() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_retrieval_tests &&
    ./build-tsan/tests/dagt_retrieval_tests &&
    cmake --build build -j "$JOBS" --target bench_retrieval &&
    rm -rf build/retrieval-smoke && mkdir -p build/retrieval-smoke &&
    DAGT_BENCH_DIR=build/retrieval-smoke \
      DAGT_RETRIEVAL_REVISIONS=2 DAGT_RETRIEVAL_ROUNDS=2 \
      DAGT_RETRIEVAL_ENDPOINTS=16 DAGT_RETRIEVAL_MIN_SPEEDUP=1.3 \
      ./build/bench/bench_retrieval &&
    python3 - <<'EOF'
import json
doc = json.load(open("build/retrieval-smoke/BENCH_retrieval.json"))
assert doc["parity_bitwise"], "miss path != cache-off engine"
assert doc["speedup"] >= 1.3, f"retrieval speedup {doc['speedup']:.2f}x < 1.3x"
assert doc["hits"] > 0, "revision stream produced no cache hits"
assert doc["hit_accuracy"] >= doc["min_accuracy_gate"], (
    f"hit accuracy {doc['hit_accuracy']:.3f} below gate")
assert doc["max_sigma_ps"] > 0 and doc["budget_ps"] >= doc["max_sigma_ps"]
assert doc["inserts"] == doc["index_size"], "index size != inserts"
metrics = doc["engine_metrics"]
for key in ("retrieval_hits", "retrieval_misses", "retrieval_hit_rate",
            "retrieval_reject_by_dist", "retrieval_reject_by_sigma",
            "retrieval_inserts", "retrieval_embed_memo_hits",
            "retrieval_index_size", "retrieval_hit_mean_us",
            "retrieval_miss_mean_us"):
    assert key in metrics, f"{key} missing from engine metrics"
assert metrics["retrieval_hits"] == doc["hits"], "counter drift vs metrics"
print(f"retrieval-smoke: ok ({doc['speedup']:.2f}x, "
      f"accuracy {doc['hit_accuracy']:.3f}, {doc['hits']} hits)")
EOF
}

# Positive pass first (docs in sync), then the negative selftest: phantom
# names injected into every extracted list must each be flagged, proving
# the drift checkers still fire.
run_docs() {
  tools/check_docs.sh &&
    tools/check_docs.sh --selftest
}

# Smoke-run the perf dashboard at tiny shapes, then validate the JSON it
# writes: the kernel tier table must be present, every profiled tier must
# have a real timing, and on SIMD-capable hosts the dispatch layer must
# actually pay off (>= 2x GEMM speedup over the scalar tier).
run_bench() {
  cmake --build build -j "$JOBS" --target bench_micro_ops &&
    rm -rf build/bench-smoke && mkdir -p build/bench-smoke &&
    DAGT_BENCH_DIR=build/bench-smoke \
      ./build/bench/bench_micro_ops \
      --benchmark_filter='BM_KernelGemmTier/.*/64' \
      --benchmark_min_time=0.02 &&
    python3 - <<'EOF'
import json
doc = json.load(open("build/bench-smoke/BENCH_micro_ops.json"))
kernels = doc["kernels"]
tiers = kernels["tiers"]
assert "scalar" in tiers, "scalar tier missing from kernels profile"
assert kernels["active_tier"] in tiers, "active tier not profiled"
for name, tier in tiers.items():
    assert tier["gemm256_seconds"] > 0, f"non-positive timing for {name}"
if len(tiers) > 1:
    speedup = kernels["best_gemm_speedup_vs_scalar"]
    assert speedup >= 2.0, f"SIMD GEMM speedup {speedup:.2f}x < 2x"
print(f"bench-smoke: ok ({', '.join(sorted(tiers))})")
EOF
}

# Expression-fusion smoke: run bench_fusion at reduced shapes with the
# gates slightly looser than the recorded numbers (the bench's own defaults
# are 1.3x / 3 allocs; the smoke gate leaves margin for noisy CI boxes),
# then validate the JSON it writes: parity must be bitwise at the scalar
# tier AND the active tier, and the compiled programs must actually have
# replaced graph launches with fused kernels.
run_fusion() {
  cmake --build build -j "$JOBS" --target bench_fusion &&
    rm -rf build/fusion-smoke && mkdir -p build/fusion-smoke &&
    DAGT_BENCH_DIR=build/fusion-smoke \
      DAGT_FUSION_MIN_SPEEDUP=1.2 DAGT_FUSION_MAX_ALLOCS=3 \
      ./build/bench/bench_fusion &&
    python3 - <<'EOF'
import json
doc = json.load(open("build/fusion-smoke/BENCH_fusion.json"))
assert doc["parity_bitwise_scalar"], "fused != unfused at scalar tier"
assert doc["parity_bitwise_active_tier"], "fused != unfused at active tier"
assert doc["speedup"] >= 1.2, f"fusion speedup {doc['speedup']:.2f}x < 1.2x"
assert doc["fused_allocs_per_predict"] <= 3, (
    f"{doc['fused_allocs_per_predict']:.1f} pooled allocs/predict > 3")
assert doc["fused_gemm_launches"] > 0, "no fused GEMM launches recorded"
assert doc["fused_ew_launches"] > 0, "no fused elementwise launches recorded"
print(f"fusion-smoke: ok ({doc['speedup']:.2f}x, "
      f"{doc['fused_allocs_per_predict']:.1f} allocs/predict)")
EOF
}

mkdir -p build
stage default build/verify-default.log run_default
stage lint build/verify-lint.log run_lint
stage analyze build/verify-analyze.log run_analyze
stage docs build/verify-docs.log run_docs
stage bench build/verify-bench.log run_bench
stage fusion build/verify-fusion.log run_fusion
if [[ "$FAST" == 0 ]]; then
  mkdir -p build-asan build-tsan
  stage asan build-asan/verify-asan.log run_asan
  stage tsan build-tsan/verify-tsan.log run_tsan
  stage obs build-tsan/verify-obs.log run_obs
  stage whatif build-tsan/verify-whatif.log run_whatif
  stage fleet build-tsan/verify-fleet.log run_fleet
  stage retrieval build-tsan/verify-retrieval.log run_retrieval
fi

if [[ "$FAILED" != 0 ]]; then
  echo "verify: FAILED (see logs above)"
  exit 1
fi
echo "verify: all stages passed"
