#!/usr/bin/env bash
# Full correctness matrix for the repo, one line of output per stage:
#
#   default   RelWithDebInfo build + complete ctest suite (DAGT_CHECKS on)
#   lint      dagt-lint over the checkout (ctest -L lint)
#   docs      tools/check_docs.sh — docs/ in sync with metrics + span names
#   asan      ASan/UBSan build, tensor + concurrency suites
#   tsan      ThreadSanitizer build, concurrency stress suite
#   obs       ThreadSanitizer build, tracing-layer suite (dagt_obs_tests)
#
# Usage: tools/verify.sh [--fast]
#   --fast skips the sanitizer stages (default + lint + docs only).
#
# Each sanitizer preset gets its own build tree (build-asan/, build-tsan/) —
# the runtimes are mutually exclusive, and CMake enforces that (see
# DAGT_SANITIZE in the top-level CMakeLists.txt). Exits non-zero if any
# stage fails; stage logs land in build*/verify-<stage>.log.

set -u
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
FAILED=0

stage() {
  local name="$1" log="$2"
  shift 2
  local start rc
  start=$(date +%s)
  if "$@" >"$log" 2>&1; then
    rc=ok
  else
    rc=FAIL
    FAILED=1
  fi
  printf '%-8s %-4s %4ss  %s\n' "$name" "$rc" "$(($(date +%s) - start))" "$log"
}

run_default() {
  cmake -B build -S . &&
    cmake --build build -j "$JOBS" &&
    ctest --test-dir build --output-on-failure -j 2
}

run_lint() {
  ctest --test-dir build -L lint --output-on-failure
}

run_asan() {
  cmake -B build-asan -S . -DDAGT_SANITIZE="address;undefined" &&
    cmake --build build-asan -j "$JOBS" \
      --target dagt_tensor_tests dagt_concurrency_tests &&
    ./build-asan/tests/dagt_tensor_tests &&
    ./build-asan/tests/dagt_concurrency_tests
}

run_tsan() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_concurrency_tests &&
    ./build-tsan/tests/dagt_concurrency_tests
}

# Shares build-tsan with run_tsan: the tracing hot path (span emission vs
# collect/aggregate/setEnabled) is a concurrency surface, so the obs suite
# runs under ThreadSanitizer, not just the default build.
run_obs() {
  cmake -B build-tsan -S . -DDAGT_SANITIZE=thread &&
    cmake --build build-tsan -j "$JOBS" --target dagt_obs_tests &&
    ./build-tsan/tests/dagt_obs_tests
}

run_docs() {
  tools/check_docs.sh
}

mkdir -p build
stage default build/verify-default.log run_default
stage lint build/verify-lint.log run_lint
stage docs build/verify-docs.log run_docs
if [[ "$FAST" == 0 ]]; then
  mkdir -p build-asan build-tsan
  stage asan build-asan/verify-asan.log run_asan
  stage tsan build-tsan/verify-tsan.log run_tsan
  stage obs build-tsan/verify-obs.log run_obs
fi

if [[ "$FAILED" != 0 ]]; then
  echo "verify: FAILED (see logs above)"
  exit 1
fi
echo "verify: all stages passed"
