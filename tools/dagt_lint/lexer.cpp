#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace dagt::lint {

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool tokenIs(const std::vector<Token>& toks, std::size_t i, const char* want) {
  return i < toks.size() && toks[i].kind != TokenKind::kString &&
         toks[i].text == want;
}

bool seqAt(const std::vector<Token>& toks, std::size_t i,
           std::initializer_list<const char*> seq) {
  std::size_t k = i;
  for (const char* want : seq) {
    if (!tokenIs(toks, k, want)) return false;
    ++k;
  }
  return true;
}

bool nextIs(const std::vector<Token>& toks, std::size_t i, const char* want) {
  return tokenIs(toks, i + 1, want);
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool endsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

namespace {

bool isDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// String-literal encoding prefixes. The raw-string marker 'R' must be the
/// last character of the prefix (R", LR", u8R", ...).
bool isLiteralPrefix(const std::string& word, bool* raw) {
  static const char* kPrefixes[] = {"u8", "u", "U", "L", ""};
  for (const char* p : kPrefixes) {
    if (word == p) {
      *raw = false;
      return !word.empty();
    }
    if (word == std::string(p) + "R") {
      *raw = true;
      return true;
    }
  }
  return false;
}

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;

  auto addComment = [&](int atLine, const std::string& body) {
    auto& slot = out.commentByLine[atLine];
    if (!slot.empty()) slot += ' ';
    slot += body;
  };

  // Consume an ordinary (non-raw) string or char literal body starting just
  // after the opening quote; returns the contents (escapes kept verbatim).
  auto consumeQuoted = [&](char quote) {
    std::string body;
    while (i < n && text[i] != quote) {
      if (text[i] == '\\' && i + 1 < n) {
        body += text[i];
        ++i;  // the escaped character is consumed below
      }
      if (i < n) {
        if (text[i] == '\n') ++line;  // splice or unterminated literal
        body += text[i];
        ++i;
      }
    }
    if (i < n) ++i;  // closing quote
    return body;
  };

  // Consume a raw string body starting just after R" — the delimiter runs
  // to the '(' and the literal ends at )delim". Returns the contents.
  auto consumeRaw = [&](int startLine) {
    std::string delim;
    while (i < n && text[i] != '(' && text[i] != '\n' && delim.size() <= 16) {
      delim += text[i];
      ++i;
    }
    if (i >= n || text[i] != '(') {
      // Malformed raw literal: treat what we saw as an ordinary string so
      // we do not swallow the rest of the file.
      (void)startLine;
      return delim;
    }
    ++i;  // '('
    const std::string closer = ")" + delim + "\"";
    const std::size_t close = text.find(closer, i);
    const std::size_t end = close == std::string::npos ? n : close;
    std::string body = text.substr(i, end - i);
    line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
    i = close == std::string::npos ? n : close + closer.size();
    return body;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // Preprocessor line (first non-ws char of the line is '#'): consume to
    // end of line, honoring backslash continuations.
    if (c == '#') {
      bool lineStart = true;
      for (std::size_t k = i; k-- > 0;) {
        if (text[k] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(text[k]))) {
          lineStart = false;
          break;
        }
      }
      if (lineStart) {
        const int startLine = line;
        std::string directive;
        while (i < n) {
          if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
            directive += ' ';
            ++line;
            i += 2;
            continue;
          }
          if (text[i] == '\n') break;
          directive += text[i];
          ++i;
        }
        out.directives.emplace_back(startLine, directive);
        continue;
      }
    }
    // Line comment. A backslash-newline splice CONTINUES the comment onto
    // the next physical line (phase-2 splicing happens before comment
    // recognition), so code "hidden" behind a spliced // must not tokenize.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::string body;
      const int startLine = line;
      i += 2;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          body += ' ';
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        body += text[i];
        ++i;
      }
      addComment(startLine, body);
      continue;
    }
    // Block comment (may span lines; body credited to each line it opens).
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      std::string body;
      int bodyLine = line;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          addComment(bodyLine, body);
          body.clear();
          ++line;
          bodyLine = line;
        } else {
          body += text[i];
        }
        ++i;
      }
      addComment(bodyLine, body);
      i = std::min(n, i + 2);
      continue;
    }
    // Identifier — or a string-literal prefix (R, L, u8R, ...) when the
    // word is immediately followed by a double quote.
    if (isIdentStart(c)) {
      std::string ident;
      while (i < n && isIdentChar(text[i])) ident += text[i++];
      bool raw = false;
      if (i < n && text[i] == '"' && isLiteralPrefix(ident, &raw)) {
        const int startLine = line;
        ++i;  // opening quote
        std::string body = raw ? consumeRaw(startLine) : consumeQuoted('"');
        out.tokens.push_back({std::move(body), startLine, TokenKind::kString});
        continue;
      }
      if (i < n && text[i] == '\'' && isLiteralPrefix(ident, &raw) && !raw) {
        ++i;  // opening quote of a prefixed char literal (L'x', u'x', ...)
        (void)consumeQuoted('\'');
        continue;
      }
      out.tokens.push_back({std::move(ident), line, TokenKind::kIdent});
      continue;
    }
    // Numeric literal: one pp-number token. Digit separators (') stay part
    // of the number instead of opening a bogus char literal; exponent signs
    // after e/E/p/P stay attached.
    if (isDigit(c) || (c == '.' && i + 1 < n && isDigit(text[i + 1]))) {
      std::string num;
      while (i < n) {
        const char d = text[i];
        if (isIdentChar(d) || d == '.') {
          num += d;
          ++i;
          continue;
        }
        if (d == '\'' && i + 1 < n && isIdentChar(text[i + 1]) &&
            !num.empty()) {
          num += d;  // digit separator
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && !num.empty() &&
            (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
             num.back() == 'P')) {
          num += d;
          ++i;
          continue;
        }
        break;
      }
      out.tokens.push_back({std::move(num), line, TokenKind::kNumber});
      continue;
    }
    // String literal (no prefix): kept as a positioned token.
    if (c == '"') {
      const int startLine = line;
      ++i;
      std::string body = consumeQuoted('"');
      out.tokens.push_back({std::move(body), startLine, TokenKind::kString});
      continue;
    }
    // Char literal: contents dropped.
    if (c == '\'') {
      ++i;
      (void)consumeQuoted('\'');
      continue;
    }
    // '::' as one token; every other punctuation char stands alone.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({"::", line, TokenKind::kPunct});
      i += 2;
      continue;
    }
    if (c == '\\' && i + 1 < n && text[i + 1] == '\n') {
      ++line;  // stray line splice in code
      i += 2;
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      out.tokens.push_back({std::string(1, c), line, TokenKind::kPunct});
    }
    ++i;
  }
  return out;
}

}  // namespace dagt::lint
