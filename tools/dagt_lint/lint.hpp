#pragma once

// dagt-lint: project-specific static checks over the repo's C++ sources.
//
// The linter runs its own lexer-lite (comments, string/char literals and
// preprocessor lines are separated from code tokens — no libclang, no
// regex engine) and enforces rules that generic tooling cannot know:
//
//   kernel-alloc            op kernels in src/tensor/ops_*.cpp allocate
//                           outputs via makeOut/makeView only — naked
//                           Tensor::zeros / Storage::allocate / new /
//                           malloc in a kernel bypasses the BufferPool.
//   hot-header-std-function no std::function in the hot-path headers
//                           (src/tensor/ops_common.hpp,
//                           src/common/parallel.hpp): type erasure there
//                           puts an indirect call inside per-element loops.
//   pragma-once             every header carries #pragma once.
//   unseeded-rng            no rand()/srand()/std::random_device/
//                           std::mt19937 outside src/common/rng — all
//                           stochastic code draws from the seeded Rng so
//                           experiments reproduce bit-for-bit.
//   guarded-by              every std::mutex member in src/serve/ headers
//                           and src/tensor/storage.hpp has at least one
//                           field annotated "// GUARDED_BY(<mutex>)";
//   guarded-by-unknown      each GUARDED_BY names a mutex declared in the
//                           same file;
//   guarded-by-unlocked     and the companion .cpp (or the header itself)
//                           actually acquires that mutex.
//   fused-kernel-registration
//                           every fused composite entry of the KernelTable
//                           (function pointers named fused*) is assigned in
//                           each tier TU that zero-seeds a table
//                           (`KernelTable x{};`) — a missing registration
//                           is a null dispatch slot the first time a
//                           compiled program replays on that tier. Tables
//                           copy-seeded from another tier inherit its
//                           registrations.
//   stdout-logging          no std::cout / std::cerr / printf outside
//                           src/common/logging (CLI, tools, benches and
//                           examples are exempt).
//   trace-macro-only        no direct TraceRegistry::emit calls outside
//                           src/obs/ — span sites go through the
//                           DAGT_TRACE_* macros so a DAGT_TRACING=0 build
//                           compiles every site out.
//
// Suppression: a comment "dagt-lint: allow(<rule>)" on the offending line
// or the line directly above it silences that rule for that line.
//
// Findings print as "file:line: rule-id message" and the binary exits
// non-zero when any survive, so `ctest -L lint` gates the tree.

#include <string>
#include <vector>

namespace dagt::lint {

/// One source file handed to the linter. `path` is the repo-relative
/// virtual path (forward slashes) that rule scoping keys on; `text` is the
/// file contents. Tests lint fixture files under an arbitrary real path by
/// giving them the virtual path of the file they impersonate.
struct SourceFile {
  std::string path;
  std::string text;
};

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  /// "file:line: rule-id message" — the grep-able report line.
  std::string render() const;
};

/// Lint a set of files as one unit (the guarded-by rule pairs each .hpp
/// with its .cpp inside the set). Returns surviving findings, ordered by
/// path then line.
std::vector<Finding> lintFiles(const std::vector<SourceFile>& files);

/// Walk a repo checkout rooted at `root` (src/, tools/, bench/, examples/,
/// tests/ — skipping build trees and tests/lint_fixtures) and lint every
/// .hpp/.cpp found. Returns surviving findings.
std::vector<Finding> lintTree(const std::string& root);

}  // namespace dagt::lint
