#pragma once

// Shared lexer-lite for the repo's static tooling (dagt-lint and
// dagt-analyze). One pass separates a C++ source file into four channels:
//
//   tokens       code tokens — identifiers, punctuation, numeric literals
//                (one token per pp-number, digit separators included) and
//                string literals (kind kString, text = the literal's
//                contents so DAGT_TRACE_SCOPE("name") / getenv("DAGT_X")
//                arguments are recoverable at their stream position);
//   directives   raw preprocessor lines (backslash continuations joined);
//   commentByLine  comment text per line (line splices inside // comments
//                are honored — the comment continues on the next line).
//
// This is NOT a compiler front end: no phases, no macro expansion, no
// type system. It is exactly strong enough that token-pattern rules and
// the dagt-analyze declaration/scope parser never desynchronize on real
// code: raw string literals R"delim(...)delim" (with u8/u/U/L prefixes),
// digit separators (1'000'000), escaped quotes, block comments and
// spliced line comments all tokenize correctly — each of those once
// silently swallowed or miscounted code in the ad-hoc predecessor.

#include <initializer_list>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dagt::lint {

enum class TokenKind : unsigned char {
  kIdent,   // identifier or keyword
  kPunct,   // single punctuation char, or "::"
  kNumber,  // one pp-number, digit separators kept in text
  kString,  // string literal; text is the contents (quotes stripped)
};

struct Token {
  std::string text;
  int line = 0;
  TokenKind kind = TokenKind::kPunct;
};

/// The lexed view of one file.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<std::pair<int, std::string>> directives;  // (line, raw text)
  std::map<int, std::string> commentByLine;
};

LexedFile lex(const std::string& text);

// -- Character / token helpers shared by the rule engines --------------------

bool isIdentStart(char c);
bool isIdentChar(char c);

/// True when `toks[i].text == want` and the token is code (never matches a
/// string literal whose contents happen to equal `want`).
bool tokenIs(const std::vector<Token>& toks, std::size_t i, const char* want);

/// Token sequence match starting at i; string-literal tokens never match.
bool seqAt(const std::vector<Token>& toks, std::size_t i,
           std::initializer_list<const char*> seq);

bool nextIs(const std::vector<Token>& toks, std::size_t i, const char* want);

bool startsWith(const std::string& s, const std::string& prefix);
bool endsWith(const std::string& s, const std::string& suffix);

}  // namespace dagt::lint
