#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lexer.hpp"

namespace dagt::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule scoping
// ---------------------------------------------------------------------------

bool isOpKernel(const std::string& path) {
  return startsWith(path, "src/tensor/ops_") && endsWith(path, ".cpp");
}

bool isHotHeader(const std::string& path) {
  return path == "src/tensor/ops_common.hpp" || path == "src/common/parallel.hpp";
}

bool isKernelTierFile(const std::string& path) {
  return startsWith(path, "src/tensor/kernels/");
}

/// Raw x86 SIMD surface: _mm_/_mm256_/_mm512_ intrinsic calls and the
/// __m128/__m256/__m512 register types.
bool isRawSimdIdent(const std::string& t) {
  if (startsWith(t, "_mm")) {
    return t.size() > 3 &&
           (t[3] == '_' || std::isdigit(static_cast<unsigned char>(t[3])));
  }
  if (startsWith(t, "__m")) {
    return t.size() > 3 && std::isdigit(static_cast<unsigned char>(t[3]));
  }
  return false;
}

/// Kernel tier translation units: the files that build a KernelTable
/// (kernels_scalar.cpp, kernels_avx2.cpp, ...). dispatch.cpp and the
/// headers are not tables.
bool isKernelTierTU(const std::string& path) {
  return startsWith(path, "src/tensor/kernels/kernels_") &&
         endsWith(path, ".cpp");
}

/// Fused composite entries of the KernelTable declaration: function-pointer
/// members `void (*fusedX)(...)` whose name starts with "fused". These are
/// the expression compiler's lowering targets, so a tier that forgets one
/// would crash (or silently fall back) the first time a program replays.
std::vector<std::string> collectFusedTableMembers(const LexedFile& lexed) {
  std::vector<std::string> members;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (tokenIs(toks, i, "(") && tokenIs(toks, i + 1, "*") &&
        toks[i + 2].kind == TokenKind::kIdent &&
        startsWith(toks[i + 2].text, "fused") && tokenIs(toks, i + 3, ")")) {
      members.push_back(toks[i + 2].text);
    }
  }
  return members;
}

bool isGuardedByScope(const std::string& path) {
  return (startsWith(path, "src/serve/") && endsWith(path, ".hpp")) ||
         (startsWith(path, "src/fleet/") && endsWith(path, ".hpp")) ||
         (startsWith(path, "src/retrieval/") && endsWith(path, ".hpp")) ||
         path == "src/tensor/storage.hpp" ||
         path == "src/core/batch_prefetcher.hpp";
}

bool isLoggingExempt(const std::string& path) {
  return !startsWith(path, "src/") || startsWith(path, "src/common/logging");
}

bool isRngExempt(const std::string& path) {
  return !startsWith(path, "src/") || startsWith(path, "src/common/rng");
}

// ---------------------------------------------------------------------------
// Suppressions: "dagt-lint: allow(rule)" on the finding's line or the line
// directly above.
// ---------------------------------------------------------------------------

std::map<int, std::set<std::string>> parseAllows(const LexedFile& lexed) {
  std::map<int, std::set<std::string>> allows;
  for (const auto& [line, body] : lexed.commentByLine) {
    std::size_t at = body.find("dagt-lint:");
    while (at != std::string::npos) {
      std::size_t open = body.find("allow(", at);
      if (open == std::string::npos) break;
      const std::size_t close = body.find(')', open);
      if (close == std::string::npos) break;
      std::string rule = body.substr(open + 6, close - open - 6);
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](char c) {
                                  return std::isspace(
                                      static_cast<unsigned char>(c));
                                }),
                 rule.end());
      allows[line].insert(rule);
      at = body.find("dagt-lint:", close);
    }
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-file scan state
// ---------------------------------------------------------------------------

struct GuardedByInfo {
  std::map<std::string, int> mutexDeclLine;      // mutex member -> decl line
  std::map<std::string, int> guardedByFirstUse;  // mutex name -> comment line
  std::vector<std::pair<std::string, int>> unknownRefs;
};

/// Mutex members: the token pattern `std :: mutex <ident> ;`.
/// GUARDED_BY references come from the comment channel.
GuardedByInfo collectGuardedBy(const LexedFile& lexed) {
  GuardedByInfo info;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
    if (seqAt(toks, i, {"std", "::", "mutex"}) &&
        toks[i + 3].kind == TokenKind::kIdent && tokenIs(toks, i + 4, ";")) {
      info.mutexDeclLine.emplace(toks[i + 3].text, toks[i + 3].line);
    }
  }
  for (const auto& [line, body] : lexed.commentByLine) {
    std::size_t at = body.find("GUARDED_BY(");
    while (at != std::string::npos) {
      const std::size_t close = body.find(')', at);
      if (close == std::string::npos) break;
      const std::string name = body.substr(at + 11, close - at - 11);
      if (info.mutexDeclLine.count(name)) {
        info.guardedByFirstUse.emplace(name, line);
      } else {
        info.unknownRefs.emplace_back(name, line);
      }
      at = body.find("GUARDED_BY(", close);
    }
  }
  return info;
}

/// True when the token stream acquires `mutexName` through any of the
/// std lock idioms: lock_guard / unique_lock / scoped_lock construction
/// naming it, or a direct <name>.lock() call.
bool acquiresMutex(const std::vector<Token>& toks,
                   const std::string& mutexName) {
  static const std::set<std::string> lockTypes = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == TokenKind::kIdent && lockTypes.count(toks[i].text)) {
      // The mutex appears within the constructor argument list a few
      // tokens later: `std::lock_guard<std::mutex> lock(mutexName);`.
      const std::size_t limit = std::min(toks.size(), i + 16);
      for (std::size_t k = i + 1; k < limit; ++k) {
        if (tokenIs(toks, k, mutexName.c_str())) return true;
        if (tokenIs(toks, k, ";")) break;
      }
    }
    if (tokenIs(toks, i, mutexName.c_str()) && nextIs(toks, i, ".") &&
        seqAt(toks, i + 2, {"lock", "("})) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Finding::render() const {
  std::ostringstream os;
  os << path << ':' << line << ": " << rule << ' ' << message;
  return os.str();
}

std::vector<Finding> lintFiles(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;

  // Lex everything once up front; guarded-by pairs headers with sources.
  std::map<std::string, LexedFile> lexedByPath;
  for (const auto& file : files) lexedByPath.emplace(file.path, lex(file.text));

  // The fused-kernel-registration rule needs the KernelTable declaration:
  // fused composite entries are collected from kernels.hpp when it is part
  // of the lint set (always true for lintTree; fixture sets provide a
  // trimmed impersonation).
  std::vector<std::string> fusedMembers;
  const auto kernelsHpp = lexedByPath.find("src/tensor/kernels/kernels.hpp");
  if (kernelsHpp != lexedByPath.end()) {
    fusedMembers = collectFusedTableMembers(kernelsHpp->second);
  }

  for (const auto& file : files) {
    const LexedFile& lexed = lexedByPath.at(file.path);
    const auto allows = parseAllows(lexed);
    const auto& toks = lexed.tokens;

    auto emit = [&](int line, const char* rule, std::string message) {
      const auto suppressedAt = [&](int l) {
        const auto it = allows.find(l);
        return it != allows.end() && it->second.count(rule);
      };
      if (suppressedAt(line) || suppressedAt(line - 1)) return;
      findings.push_back({file.path, line, rule, std::move(message)});
    };

    // -- pragma-once --------------------------------------------------------
    if (endsWith(file.path, ".hpp")) {
      bool hasPragmaOnce = false;
      for (const auto& [line, directive] : lexed.directives) {
        if (directive.find("pragma") != std::string::npos &&
            directive.find("once") != std::string::npos) {
          hasPragmaOnce = true;
          break;
        }
      }
      if (!hasPragmaOnce) {
        emit(1, "pragma-once", "header is missing #pragma once");
      }
    }

    // -- kernel-alloc -------------------------------------------------------
    if (isOpKernel(file.path)) {
      static const std::set<std::string> tensorAllocs = {
          "zeros", "ones", "full", "fromVector", "randn", "randu"};
      static const std::set<std::string> storageAllocs = {"allocate", "zeros",
                                                          "adopt"};
      static const std::set<std::string> cAllocs = {"malloc", "calloc",
                                                    "realloc"};
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdent) continue;
        if (t.text == "Tensor" && nextIs(toks, i, "::") && i + 2 < toks.size() &&
            tensorAllocs.count(toks[i + 2].text)) {
          emit(t.line, "kernel-alloc",
               "op kernels allocate outputs via makeOut/makeView "
               "(BufferPool), not Tensor::" +
                   toks[i + 2].text);
        }
        if (t.text == "Storage" && nextIs(toks, i, "::") &&
            i + 2 < toks.size() && storageAllocs.count(toks[i + 2].text)) {
          emit(t.line, "kernel-alloc",
               "op kernels allocate outputs via makeOut/makeView "
               "(BufferPool), not Storage::" +
                   toks[i + 2].text);
        }
        if (t.text == "new") {
          emit(t.line, "kernel-alloc",
               "op kernels must not allocate with `new`; route buffers "
               "through makeOut/makeView");
        }
        if (cAllocs.count(t.text) && nextIs(toks, i, "(")) {
          emit(t.line, "kernel-alloc",
               "op kernels must not call " + t.text +
                   "(); route buffers through makeOut/makeView");
        }
      }
    }

    // -- hot-header-std-function --------------------------------------------
    if (isHotHeader(file.path)) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (seqAt(toks, i, {"std", "::", "function"})) {
          emit(toks[i].line, "hot-header-std-function",
               "hot-path header must stay free of std::function (type-"
               "erased calls inside per-element loops); take a template "
               "parameter instead");
        }
      }
    }

    // -- intrinsics-outside-kernels -----------------------------------------
    // Raw SIMD belongs behind the dispatch table: the kernel TUs carry the
    // per-tier compile flags (-mavx2/-mfma with -ffp-contract=off) and the
    // rounding contract; an intrinsic anywhere else silently escapes both.
    if (!isKernelTierFile(file.path)) {
      for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind == TokenKind::kIdent && isRawSimdIdent(toks[i].text)) {
          emit(toks[i].line, "intrinsics-outside-kernels",
               "raw SIMD intrinsic '" + toks[i].text +
                   "' outside src/tensor/kernels/; call through "
                   "kernels::active() so dispatch and the rounding contract "
                   "stay in one place");
        }
      }
      static const std::set<std::string> simdHeaders = {
          "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
          "avxintrin.h", "smmintrin.h", "tmmintrin.h"};
      for (const auto& [line, directive] : lexed.directives) {
        if (directive.find("include") == std::string::npos) continue;
        for (const auto& header : simdHeaders) {
          if (directive.find(header) != std::string::npos) {
            emit(line, "intrinsics-outside-kernels",
                 "#include <" + header +
                     "> outside src/tensor/kernels/; SIMD code lives behind "
                     "the kernel dispatch table");
          }
        }
      }
    }

    // -- unseeded-rng -------------------------------------------------------
    if (!isRngExempt(file.path)) {
      static const std::set<std::string> bannedIdents = {
          "random_device", "mt19937", "mt19937_64", "default_random_engine",
          "minstd_rand"};
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdent) continue;
        if ((t.text == "rand" || t.text == "srand") && nextIs(toks, i, "(")) {
          emit(t.line, "unseeded-rng",
               t.text + "() bypasses the seeded dagt::Rng; draw from an "
                        "explicitly seeded Rng instead");
        }
        if (bannedIdents.count(t.text)) {
          emit(t.line, "unseeded-rng",
               "std::" + t.text +
                   " bypasses the seeded dagt::Rng; draw from an "
                   "explicitly seeded Rng instead");
        }
      }
    }

    // -- guarded-by ---------------------------------------------------------
    if (isGuardedByScope(file.path)) {
      const GuardedByInfo info = collectGuardedBy(lexed);
      for (const auto& [name, line] : info.mutexDeclLine) {
        if (!info.guardedByFirstUse.count(name)) {
          emit(line, "guarded-by",
               "mutex '" + name +
                   "' has no field annotated // GUARDED_BY(" + name + ")");
        }
      }
      for (const auto& [name, line] : info.unknownRefs) {
        emit(line, "guarded-by-unknown",
             "GUARDED_BY(" + name +
                 ") names no std::mutex member declared in this header");
      }
      // Cross-check: the companion .cpp (or the header's own inline code)
      // must acquire each annotated mutex at least once.
      const std::string cppPath =
          file.path.substr(0, file.path.size() - 4) + ".cpp";
      const auto cppIt = lexedByPath.find(cppPath);
      for (const auto& [name, line] : info.guardedByFirstUse) {
        const bool locked =
            acquiresMutex(toks, name) ||
            (cppIt != lexedByPath.end() &&
             acquiresMutex(cppIt->second.tokens, name));
        if (!locked) {
          emit(line, "guarded-by-unlocked",
               "mutex '" + name + "' guards fields but is never locked in " +
                   (cppIt != lexedByPath.end() ? cppPath
                                               : "this header (no " + cppPath +
                                                     " in the lint set)"));
        }
      }
    }

    // -- stdout-logging -----------------------------------------------------
    if (!isLoggingExempt(file.path)) {
      static const std::set<std::string> printers = {"printf", "fprintf",
                                                     "puts", "putchar"};
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdent) continue;
        if (t.text == "std" && nextIs(toks, i, "::") && i + 2 < toks.size() &&
            (toks[i + 2].text == "cout" || toks[i + 2].text == "cerr")) {
          emit(t.line, "stdout-logging",
               "library code logs through src/common/logging, not std::" +
                   toks[i + 2].text);
        }
        if (printers.count(t.text) && nextIs(toks, i, "(")) {
          emit(t.line, "stdout-logging",
               "library code logs through src/common/logging, not " + t.text +
                   "()");
        }
      }
    }

    // -- fused-kernel-registration ------------------------------------------
    // A tier TU that zero-seeds its table (`KernelTable x{};`) must assign
    // every fused composite entry declared in kernels.hpp: the expression
    // compiler lowers straight to these slots, so a forgotten registration
    // is a null call the first time a compiled program replays on that
    // tier. Tables seeded by copying another tier (`KernelTable x =
    // avx2Table();`) inherit the base tier's registrations and only
    // override what they specialize.
    if (isKernelTierTU(file.path) && !fusedMembers.empty()) {
      int zeroSeedLine = -1;
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (tokenIs(toks, i, "KernelTable") &&
            toks[i + 1].kind == TokenKind::kIdent && tokenIs(toks, i + 2, "{")) {
          zeroSeedLine = toks[i].line;
          break;
        }
      }
      if (zeroSeedLine != -1) {
        for (const std::string& member : fusedMembers) {
          bool assigned = false;
          for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (tokenIs(toks, i, ".") &&
                tokenIs(toks, i + 1, member.c_str()) &&
                tokenIs(toks, i + 2, "=")) {
              assigned = true;
              break;
            }
          }
          if (!assigned) {
            emit(zeroSeedLine, "fused-kernel-registration",
                 "tier table never assigns fused kernel '" + member +
                     "'; register every fused composite for this tier (or "
                     "seed the table from another tier's table)");
          }
        }
      }
    }

    // -- trace-macro-only ---------------------------------------------------
    if (!startsWith(file.path, "src/obs/")) {
      for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if ((tokenIs(toks, i, ".") || tokenIs(toks, i, "::")) &&
            tokenIs(toks, i + 1, "emit") && tokenIs(toks, i + 2, "(")) {
          emit(toks[i + 1].line, "trace-macro-only",
               "TraceRegistry::emit is called directly only inside src/obs/; "
               "everywhere else use DAGT_TRACE_SCOPE/DAGT_TRACE_INSTANT so "
               "DAGT_TRACING=0 compiles the site out");
        }
        if (seqAt(toks, i, {"-", ">", "emit", "("})) {
          emit(toks[i + 2].line, "trace-macro-only",
               "TraceRegistry::emit is called directly only inside src/obs/; "
               "everywhere else use DAGT_TRACE_SCOPE/DAGT_TRACE_INSTANT so "
               "DAGT_TRACING=0 compiles the site out");
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        // Build trees and the intentionally-bad lint/analyze fixtures are
        // not part of the linted surface.
        if (startsWith(name, "build") || name == "lint_fixtures" ||
            name == "analyze_fixtures") {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream contents;
      contents << in.rdbuf();
      files.push_back({fs::relative(it->path(), root).generic_string(),
                       contents.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return lintFiles(files);
}

}  // namespace dagt::lint
