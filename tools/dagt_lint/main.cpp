// dagt_lint — project-specific static checks (see lint.hpp for the rule
// catalogue). Exits non-zero when findings survive suppression, so it runs
// as a ctest (label `lint`) gating the tree.
//
// Usage:
//   dagt_lint [ROOT]                      lint a repo checkout (default .)
//   dagt_lint --as VIRTUAL_PATH FILE ...  lint explicit files, each scoped
//                                         as if it lived at VIRTUAL_PATH
//                                         (fixture/self-test mode)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "dagt-lint: cannot open " << path << '\n';
    std::exit(2);
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  std::vector<dagt::lint::Finding> findings;
  if (!args.empty() && args.front() == "--as") {
    std::vector<dagt::lint::SourceFile> files;
    for (std::size_t i = 0; i < args.size(); i += 3) {
      if (args[i] != "--as" || i + 2 >= args.size()) {
        std::cerr << "usage: dagt_lint --as VIRTUAL_PATH FILE "
                     "[--as VIRTUAL_PATH FILE ...]\n";
        return 2;
      }
      files.push_back({args[i + 1], readFile(args[i + 2])});
    }
    findings = dagt::lint::lintFiles(files);
  } else {
    const std::string root = args.empty() ? std::string(".") : args.front();
    findings = dagt::lint::lintTree(root);
  }

  for (const auto& finding : findings) {
    std::cout << finding.render() << '\n';
  }
  if (findings.empty()) {
    std::cout << "dagt-lint: clean\n";
    return 0;
  }
  std::cout << "dagt-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
