file(REMOVE_RECURSE
  "CMakeFiles/dagt.dir/dagt_cli.cpp.o"
  "CMakeFiles/dagt.dir/dagt_cli.cpp.o.d"
  "dagt"
  "dagt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
