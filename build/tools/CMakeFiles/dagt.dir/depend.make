# Empty dependencies file for dagt.
# This may be replaced when dependencies are built.
