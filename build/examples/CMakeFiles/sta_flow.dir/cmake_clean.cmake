file(REMOVE_RECURSE
  "CMakeFiles/sta_flow.dir/sta_flow.cpp.o"
  "CMakeFiles/sta_flow.dir/sta_flow.cpp.o.d"
  "sta_flow"
  "sta_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sta_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
