# Empty compiler generated dependencies file for sta_flow.
# This may be replaced when dependencies are built.
