file(REMOVE_RECURSE
  "CMakeFiles/multi_node_transfer.dir/multi_node_transfer.cpp.o"
  "CMakeFiles/multi_node_transfer.dir/multi_node_transfer.cpp.o.d"
  "multi_node_transfer"
  "multi_node_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_node_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
