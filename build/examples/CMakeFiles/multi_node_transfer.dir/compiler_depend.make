# Empty compiler generated dependencies file for multi_node_transfer.
# This may be replaced when dependencies are built.
