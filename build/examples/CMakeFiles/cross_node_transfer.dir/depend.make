# Empty dependencies file for cross_node_transfer.
# This may be replaced when dependencies are built.
