file(REMOVE_RECURSE
  "CMakeFiles/cross_node_transfer.dir/cross_node_transfer.cpp.o"
  "CMakeFiles/cross_node_transfer.dir/cross_node_transfer.cpp.o.d"
  "cross_node_transfer"
  "cross_node_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_node_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
