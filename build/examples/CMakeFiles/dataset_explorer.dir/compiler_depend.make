# Empty compiler generated dependencies file for dataset_explorer.
# This may be replaced when dependencies are built.
