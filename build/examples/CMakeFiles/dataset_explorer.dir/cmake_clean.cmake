file(REMOVE_RECURSE
  "CMakeFiles/dataset_explorer.dir/dataset_explorer.cpp.o"
  "CMakeFiles/dataset_explorer.dir/dataset_explorer.cpp.o.d"
  "dataset_explorer"
  "dataset_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
