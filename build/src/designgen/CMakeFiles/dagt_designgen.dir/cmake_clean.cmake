file(REMOVE_RECURSE
  "CMakeFiles/dagt_designgen.dir/design_suite.cpp.o"
  "CMakeFiles/dagt_designgen.dir/design_suite.cpp.o.d"
  "CMakeFiles/dagt_designgen.dir/logic_network.cpp.o"
  "CMakeFiles/dagt_designgen.dir/logic_network.cpp.o.d"
  "CMakeFiles/dagt_designgen.dir/tech_mapper.cpp.o"
  "CMakeFiles/dagt_designgen.dir/tech_mapper.cpp.o.d"
  "libdagt_designgen.a"
  "libdagt_designgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_designgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
