
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/designgen/design_suite.cpp" "src/designgen/CMakeFiles/dagt_designgen.dir/design_suite.cpp.o" "gcc" "src/designgen/CMakeFiles/dagt_designgen.dir/design_suite.cpp.o.d"
  "/root/repo/src/designgen/logic_network.cpp" "src/designgen/CMakeFiles/dagt_designgen.dir/logic_network.cpp.o" "gcc" "src/designgen/CMakeFiles/dagt_designgen.dir/logic_network.cpp.o.d"
  "/root/repo/src/designgen/tech_mapper.cpp" "src/designgen/CMakeFiles/dagt_designgen.dir/tech_mapper.cpp.o" "gcc" "src/designgen/CMakeFiles/dagt_designgen.dir/tech_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
