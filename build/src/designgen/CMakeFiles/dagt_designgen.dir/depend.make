# Empty dependencies file for dagt_designgen.
# This may be replaced when dependencies are built.
