file(REMOVE_RECURSE
  "libdagt_designgen.a"
)
