file(REMOVE_RECURSE
  "CMakeFiles/dagt_core.dir/bayesian_head.cpp.o"
  "CMakeFiles/dagt_core.dir/bayesian_head.cpp.o.d"
  "CMakeFiles/dagt_core.dir/dataset.cpp.o"
  "CMakeFiles/dagt_core.dir/dataset.cpp.o.d"
  "CMakeFiles/dagt_core.dir/disentangler.cpp.o"
  "CMakeFiles/dagt_core.dir/disentangler.cpp.o.d"
  "CMakeFiles/dagt_core.dir/extractor.cpp.o"
  "CMakeFiles/dagt_core.dir/extractor.cpp.o.d"
  "CMakeFiles/dagt_core.dir/losses.cpp.o"
  "CMakeFiles/dagt_core.dir/losses.cpp.o.d"
  "CMakeFiles/dagt_core.dir/models.cpp.o"
  "CMakeFiles/dagt_core.dir/models.cpp.o.d"
  "CMakeFiles/dagt_core.dir/path_cnn.cpp.o"
  "CMakeFiles/dagt_core.dir/path_cnn.cpp.o.d"
  "CMakeFiles/dagt_core.dir/timing_gnn.cpp.o"
  "CMakeFiles/dagt_core.dir/timing_gnn.cpp.o.d"
  "CMakeFiles/dagt_core.dir/trainer.cpp.o"
  "CMakeFiles/dagt_core.dir/trainer.cpp.o.d"
  "libdagt_core.a"
  "libdagt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
