file(REMOVE_RECURSE
  "libdagt_core.a"
)
