
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bayesian_head.cpp" "src/core/CMakeFiles/dagt_core.dir/bayesian_head.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/bayesian_head.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/dagt_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/disentangler.cpp" "src/core/CMakeFiles/dagt_core.dir/disentangler.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/disentangler.cpp.o.d"
  "/root/repo/src/core/extractor.cpp" "src/core/CMakeFiles/dagt_core.dir/extractor.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/extractor.cpp.o.d"
  "/root/repo/src/core/losses.cpp" "src/core/CMakeFiles/dagt_core.dir/losses.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/losses.cpp.o.d"
  "/root/repo/src/core/models.cpp" "src/core/CMakeFiles/dagt_core.dir/models.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/models.cpp.o.d"
  "/root/repo/src/core/path_cnn.cpp" "src/core/CMakeFiles/dagt_core.dir/path_cnn.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/path_cnn.cpp.o.d"
  "/root/repo/src/core/timing_gnn.cpp" "src/core/CMakeFiles/dagt_core.dir/timing_gnn.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/timing_gnn.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/dagt_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/dagt_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/features/CMakeFiles/dagt_features.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dagt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dagt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/dagt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/designgen/CMakeFiles/dagt_designgen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
