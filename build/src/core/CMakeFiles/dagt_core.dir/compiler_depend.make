# Empty compiler generated dependencies file for dagt_core.
# This may be replaced when dependencies are built.
