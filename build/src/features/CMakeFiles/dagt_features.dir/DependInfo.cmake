
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/design_data.cpp" "src/features/CMakeFiles/dagt_features.dir/design_data.cpp.o" "gcc" "src/features/CMakeFiles/dagt_features.dir/design_data.cpp.o.d"
  "/root/repo/src/features/feature_builder.cpp" "src/features/CMakeFiles/dagt_features.dir/feature_builder.cpp.o" "gcc" "src/features/CMakeFiles/dagt_features.dir/feature_builder.cpp.o.d"
  "/root/repo/src/features/path_extractor.cpp" "src/features/CMakeFiles/dagt_features.dir/path_extractor.cpp.o" "gcc" "src/features/CMakeFiles/dagt_features.dir/path_extractor.cpp.o.d"
  "/root/repo/src/features/pin_graph.cpp" "src/features/CMakeFiles/dagt_features.dir/pin_graph.cpp.o" "gcc" "src/features/CMakeFiles/dagt_features.dir/pin_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sta/CMakeFiles/dagt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/designgen/CMakeFiles/dagt_designgen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dagt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
