file(REMOVE_RECURSE
  "libdagt_features.a"
)
