# Empty dependencies file for dagt_features.
# This may be replaced when dependencies are built.
