file(REMOVE_RECURSE
  "CMakeFiles/dagt_features.dir/design_data.cpp.o"
  "CMakeFiles/dagt_features.dir/design_data.cpp.o.d"
  "CMakeFiles/dagt_features.dir/feature_builder.cpp.o"
  "CMakeFiles/dagt_features.dir/feature_builder.cpp.o.d"
  "CMakeFiles/dagt_features.dir/path_extractor.cpp.o"
  "CMakeFiles/dagt_features.dir/path_extractor.cpp.o.d"
  "CMakeFiles/dagt_features.dir/pin_graph.cpp.o"
  "CMakeFiles/dagt_features.dir/pin_graph.cpp.o.d"
  "libdagt_features.a"
  "libdagt_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
