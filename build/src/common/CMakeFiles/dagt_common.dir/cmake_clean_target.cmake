file(REMOVE_RECURSE
  "libdagt_common.a"
)
