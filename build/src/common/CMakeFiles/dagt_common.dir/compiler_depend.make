# Empty compiler generated dependencies file for dagt_common.
# This may be replaced when dependencies are built.
