file(REMOVE_RECURSE
  "CMakeFiles/dagt_common.dir/logging.cpp.o"
  "CMakeFiles/dagt_common.dir/logging.cpp.o.d"
  "CMakeFiles/dagt_common.dir/parallel.cpp.o"
  "CMakeFiles/dagt_common.dir/parallel.cpp.o.d"
  "CMakeFiles/dagt_common.dir/rng.cpp.o"
  "CMakeFiles/dagt_common.dir/rng.cpp.o.d"
  "CMakeFiles/dagt_common.dir/table.cpp.o"
  "CMakeFiles/dagt_common.dir/table.cpp.o.d"
  "libdagt_common.a"
  "libdagt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
