# Empty dependencies file for dagt_common.
# This may be replaced when dependencies are built.
