file(REMOVE_RECURSE
  "libdagt_tensor.a"
)
