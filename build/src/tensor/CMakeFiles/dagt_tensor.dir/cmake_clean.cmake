file(REMOVE_RECURSE
  "CMakeFiles/dagt_tensor.dir/ops_conv.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_conv.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/ops_elementwise.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_elementwise.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/ops_index.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_index.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/ops_linalg.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_linalg.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/ops_reduce.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_reduce.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/ops_shape.cpp.o"
  "CMakeFiles/dagt_tensor.dir/ops_shape.cpp.o.d"
  "CMakeFiles/dagt_tensor.dir/tensor.cpp.o"
  "CMakeFiles/dagt_tensor.dir/tensor.cpp.o.d"
  "libdagt_tensor.a"
  "libdagt_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
