# Empty compiler generated dependencies file for dagt_tensor.
# This may be replaced when dependencies are built.
