
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/ops_conv.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_conv.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_conv.cpp.o.d"
  "/root/repo/src/tensor/ops_elementwise.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_elementwise.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_elementwise.cpp.o.d"
  "/root/repo/src/tensor/ops_index.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_index.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_index.cpp.o.d"
  "/root/repo/src/tensor/ops_linalg.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_linalg.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_linalg.cpp.o.d"
  "/root/repo/src/tensor/ops_reduce.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_reduce.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_reduce.cpp.o.d"
  "/root/repo/src/tensor/ops_shape.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_shape.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/ops_shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/dagt_tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/dagt_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
