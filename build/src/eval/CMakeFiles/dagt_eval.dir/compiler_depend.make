# Empty compiler generated dependencies file for dagt_eval.
# This may be replaced when dependencies are built.
