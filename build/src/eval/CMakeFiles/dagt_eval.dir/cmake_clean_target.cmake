file(REMOVE_RECURSE
  "libdagt_eval.a"
)
