file(REMOVE_RECURSE
  "CMakeFiles/dagt_eval.dir/kde.cpp.o"
  "CMakeFiles/dagt_eval.dir/kde.cpp.o.d"
  "libdagt_eval.a"
  "libdagt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
