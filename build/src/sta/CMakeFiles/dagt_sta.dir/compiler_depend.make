# Empty compiler generated dependencies file for dagt_sta.
# This may be replaced when dependencies are built.
