file(REMOVE_RECURSE
  "libdagt_sta.a"
)
