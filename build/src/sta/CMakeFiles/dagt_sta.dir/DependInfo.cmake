
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sta/incremental_sta.cpp" "src/sta/CMakeFiles/dagt_sta.dir/incremental_sta.cpp.o" "gcc" "src/sta/CMakeFiles/dagt_sta.dir/incremental_sta.cpp.o.d"
  "/root/repo/src/sta/route_estimator.cpp" "src/sta/CMakeFiles/dagt_sta.dir/route_estimator.cpp.o" "gcc" "src/sta/CMakeFiles/dagt_sta.dir/route_estimator.cpp.o.d"
  "/root/repo/src/sta/sta_engine.cpp" "src/sta/CMakeFiles/dagt_sta.dir/sta_engine.cpp.o" "gcc" "src/sta/CMakeFiles/dagt_sta.dir/sta_engine.cpp.o.d"
  "/root/repo/src/sta/timing_optimizer.cpp" "src/sta/CMakeFiles/dagt_sta.dir/timing_optimizer.cpp.o" "gcc" "src/sta/CMakeFiles/dagt_sta.dir/timing_optimizer.cpp.o.d"
  "/root/repo/src/sta/timing_report.cpp" "src/sta/CMakeFiles/dagt_sta.dir/timing_report.cpp.o" "gcc" "src/sta/CMakeFiles/dagt_sta.dir/timing_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
