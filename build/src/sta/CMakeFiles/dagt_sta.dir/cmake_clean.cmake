file(REMOVE_RECURSE
  "CMakeFiles/dagt_sta.dir/incremental_sta.cpp.o"
  "CMakeFiles/dagt_sta.dir/incremental_sta.cpp.o.d"
  "CMakeFiles/dagt_sta.dir/route_estimator.cpp.o"
  "CMakeFiles/dagt_sta.dir/route_estimator.cpp.o.d"
  "CMakeFiles/dagt_sta.dir/sta_engine.cpp.o"
  "CMakeFiles/dagt_sta.dir/sta_engine.cpp.o.d"
  "CMakeFiles/dagt_sta.dir/timing_optimizer.cpp.o"
  "CMakeFiles/dagt_sta.dir/timing_optimizer.cpp.o.d"
  "CMakeFiles/dagt_sta.dir/timing_report.cpp.o"
  "CMakeFiles/dagt_sta.dir/timing_report.cpp.o.d"
  "libdagt_sta.a"
  "libdagt_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
