file(REMOVE_RECURSE
  "CMakeFiles/dagt_route.dir/global_router.cpp.o"
  "CMakeFiles/dagt_route.dir/global_router.cpp.o.d"
  "libdagt_route.a"
  "libdagt_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
