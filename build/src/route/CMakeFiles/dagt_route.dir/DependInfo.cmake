
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/global_router.cpp" "src/route/CMakeFiles/dagt_route.dir/global_router.cpp.o" "gcc" "src/route/CMakeFiles/dagt_route.dir/global_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
