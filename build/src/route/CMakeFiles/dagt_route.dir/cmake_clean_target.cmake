file(REMOVE_RECURSE
  "libdagt_route.a"
)
