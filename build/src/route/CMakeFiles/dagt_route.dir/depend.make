# Empty dependencies file for dagt_route.
# This may be replaced when dependencies are built.
