file(REMOVE_RECURSE
  "CMakeFiles/dagt_nn.dir/layers.cpp.o"
  "CMakeFiles/dagt_nn.dir/layers.cpp.o.d"
  "CMakeFiles/dagt_nn.dir/module.cpp.o"
  "CMakeFiles/dagt_nn.dir/module.cpp.o.d"
  "CMakeFiles/dagt_nn.dir/optimizer.cpp.o"
  "CMakeFiles/dagt_nn.dir/optimizer.cpp.o.d"
  "libdagt_nn.a"
  "libdagt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
