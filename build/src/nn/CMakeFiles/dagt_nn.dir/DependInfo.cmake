
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/dagt_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/dagt_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/dagt_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/dagt_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/dagt_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/dagt_nn.dir/optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dagt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
