# Empty dependencies file for dagt_nn.
# This may be replaced when dependencies are built.
