file(REMOVE_RECURSE
  "libdagt_nn.a"
)
