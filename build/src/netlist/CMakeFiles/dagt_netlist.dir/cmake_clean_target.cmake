file(REMOVE_RECURSE
  "libdagt_netlist.a"
)
