file(REMOVE_RECURSE
  "CMakeFiles/dagt_netlist.dir/cell_library.cpp.o"
  "CMakeFiles/dagt_netlist.dir/cell_library.cpp.o.d"
  "CMakeFiles/dagt_netlist.dir/io.cpp.o"
  "CMakeFiles/dagt_netlist.dir/io.cpp.o.d"
  "CMakeFiles/dagt_netlist.dir/netlist.cpp.o"
  "CMakeFiles/dagt_netlist.dir/netlist.cpp.o.d"
  "libdagt_netlist.a"
  "libdagt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
