
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/cell_library.cpp" "src/netlist/CMakeFiles/dagt_netlist.dir/cell_library.cpp.o" "gcc" "src/netlist/CMakeFiles/dagt_netlist.dir/cell_library.cpp.o.d"
  "/root/repo/src/netlist/io.cpp" "src/netlist/CMakeFiles/dagt_netlist.dir/io.cpp.o" "gcc" "src/netlist/CMakeFiles/dagt_netlist.dir/io.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/dagt_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/dagt_netlist.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
