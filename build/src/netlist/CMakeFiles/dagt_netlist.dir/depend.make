# Empty dependencies file for dagt_netlist.
# This may be replaced when dependencies are built.
