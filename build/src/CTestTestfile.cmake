# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("netlist")
subdirs("designgen")
subdirs("place")
subdirs("sta")
subdirs("route")
subdirs("features")
subdirs("core")
subdirs("eval")
