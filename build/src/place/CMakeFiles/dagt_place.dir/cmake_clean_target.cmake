file(REMOVE_RECURSE
  "libdagt_place.a"
)
