# Empty dependencies file for dagt_place.
# This may be replaced when dependencies are built.
