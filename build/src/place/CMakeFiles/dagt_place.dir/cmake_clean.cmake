file(REMOVE_RECURSE
  "CMakeFiles/dagt_place.dir/layout_maps.cpp.o"
  "CMakeFiles/dagt_place.dir/layout_maps.cpp.o.d"
  "CMakeFiles/dagt_place.dir/placer.cpp.o"
  "CMakeFiles/dagt_place.dir/placer.cpp.o.d"
  "libdagt_place.a"
  "libdagt_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
