# Empty compiler generated dependencies file for dagt_tests.
# This may be replaced when dependencies are built.
