file(REMOVE_RECURSE
  "CMakeFiles/dagt_tests.dir/test_common.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_core.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_designgen.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_designgen.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_eval.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_eval.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_features.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_features.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_incremental_sta.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_incremental_sta.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_io_report.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_io_report.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_netlist.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_netlist.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_nn.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_nn.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_place_sta.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_place_sta.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_route.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_route.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_tensor.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_tensor.cpp.o.d"
  "CMakeFiles/dagt_tests.dir/test_tensor_properties.cpp.o"
  "CMakeFiles/dagt_tests.dir/test_tensor_properties.cpp.o.d"
  "dagt_tests"
  "dagt_tests.pdb"
  "dagt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
