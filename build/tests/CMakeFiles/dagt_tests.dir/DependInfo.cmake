
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/dagt_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/dagt_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_designgen.cpp" "tests/CMakeFiles/dagt_tests.dir/test_designgen.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_designgen.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/dagt_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_features.cpp" "tests/CMakeFiles/dagt_tests.dir/test_features.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_features.cpp.o.d"
  "/root/repo/tests/test_incremental_sta.cpp" "tests/CMakeFiles/dagt_tests.dir/test_incremental_sta.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_incremental_sta.cpp.o.d"
  "/root/repo/tests/test_io_report.cpp" "tests/CMakeFiles/dagt_tests.dir/test_io_report.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_io_report.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/dagt_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_nn.cpp" "tests/CMakeFiles/dagt_tests.dir/test_nn.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_nn.cpp.o.d"
  "/root/repo/tests/test_place_sta.cpp" "tests/CMakeFiles/dagt_tests.dir/test_place_sta.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_place_sta.cpp.o.d"
  "/root/repo/tests/test_route.cpp" "tests/CMakeFiles/dagt_tests.dir/test_route.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_route.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/dagt_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_tensor_properties.cpp" "tests/CMakeFiles/dagt_tests.dir/test_tensor_properties.cpp.o" "gcc" "tests/CMakeFiles/dagt_tests.dir/test_tensor_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dagt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/dagt_route.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dagt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dagt_features.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/dagt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/designgen/CMakeFiles/dagt_designgen.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dagt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dagt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
