file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cpp.o"
  "CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cpp.o.d"
  "bench_table1_dataset"
  "bench_table1_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
