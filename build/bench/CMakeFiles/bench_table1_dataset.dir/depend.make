# Empty dependencies file for bench_table1_dataset.
# This may be replaced when dependencies are built.
