file(REMOVE_RECURSE
  "CMakeFiles/dagt_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/dagt_bench_harness.dir/harness.cpp.o.d"
  "libdagt_bench_harness.a"
  "libdagt_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagt_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
