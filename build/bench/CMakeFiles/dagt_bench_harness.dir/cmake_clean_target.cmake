file(REMOVE_RECURSE
  "libdagt_bench_harness.a"
)
