# Empty dependencies file for dagt_bench_harness.
# This may be replaced when dependencies are built.
