
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/harness.cpp" "bench/CMakeFiles/dagt_bench_harness.dir/harness.cpp.o" "gcc" "bench/CMakeFiles/dagt_bench_harness.dir/harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dagt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dagt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/dagt_features.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/dagt_route.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/dagt_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/designgen/CMakeFiles/dagt_designgen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/dagt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dagt_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dagt_place.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/dagt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dagt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
