# Empty dependencies file for bench_fig8_module_ablation.
# This may be replaced when dependencies are built.
