file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kde.dir/bench_fig6_kde.cpp.o"
  "CMakeFiles/bench_fig6_kde.dir/bench_fig6_kde.cpp.o.d"
  "bench_fig6_kde"
  "bench_fig6_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
