# Empty dependencies file for bench_fig6_kde.
# This may be replaced when dependencies are built.
