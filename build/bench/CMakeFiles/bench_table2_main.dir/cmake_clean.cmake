file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_main.dir/bench_table2_main.cpp.o"
  "CMakeFiles/bench_table2_main.dir/bench_table2_main.cpp.o.d"
  "bench_table2_main"
  "bench_table2_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
