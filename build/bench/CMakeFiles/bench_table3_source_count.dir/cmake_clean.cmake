file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_source_count.dir/bench_table3_source_count.cpp.o"
  "CMakeFiles/bench_table3_source_count.dir/bench_table3_source_count.cpp.o.d"
  "bench_table3_source_count"
  "bench_table3_source_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_source_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
