# Empty compiler generated dependencies file for bench_table3_source_count.
# This may be replaced when dependencies are built.
