file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_scatter.dir/bench_fig1_scatter.cpp.o"
  "CMakeFiles/bench_fig1_scatter.dir/bench_fig1_scatter.cpp.o.d"
  "bench_fig1_scatter"
  "bench_fig1_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
