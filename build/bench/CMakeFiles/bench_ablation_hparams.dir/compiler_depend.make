# Empty compiler generated dependencies file for bench_ablation_hparams.
# This may be replaced when dependencies are built.
