file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hparams.dir/bench_ablation_hparams.cpp.o"
  "CMakeFiles/bench_ablation_hparams.dir/bench_ablation_hparams.cpp.o.d"
  "bench_ablation_hparams"
  "bench_ablation_hparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
