// Quickstart: the full cross-node transfer flow on a reduced scale.
//
// 1. Build the synthetic design suite on both technology nodes (the
//    stand-in for the paper's Genus/Innovus data-generation flow).
// 2. Train the proposed model (disentangle + align + Bayesian readout) on
//    abundant 130nm data plus one 7nm design.
// 3. Evaluate endpoint arrival-time prediction (R^2) on held-out 7nm
//    designs.

#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"

int main() {
  using namespace dagt;
  Log::threshold() = LogLevel::kInfo;

  // --- 1. Data generation ---------------------------------------------
  features::DataConfig dataConfig;
  dataConfig.designScale = 0.5f;  // quickstart scale; benches use 1.0
  const features::DataPipeline pipeline(dataConfig);

  std::vector<features::DesignData> train;
  for (const char* name :
       {"smallboom", "jpeg", "linkruncca", "spiMaster", "usbf_device"}) {
    train.push_back(pipeline.build(name));
  }
  std::vector<features::DesignData> test;
  for (const char* name : {"arm9", "chacha", "sha3"}) {
    test.push_back(pipeline.build(name));
  }

  auto pointers = [](const std::vector<features::DesignData>& v) {
    std::vector<const features::DesignData*> p;
    for (const auto& d : v) p.push_back(&d);
    return p;
  };
  core::TimingDataset trainSet(pointers(train));
  const core::TimingDataset testSet(pointers(test));
  // The paper's premise: data at the advanced node is scarce — only a
  // small budget of the 7nm design's endpoints is visible in training.
  trainSet.restrictEndpoints(train.front(), 48, /*seed=*/99);

  // --- 2. Training -------------------------------------------------------
  core::TrainConfig trainConfig;
  trainConfig.epochs = 24;
  trainConfig.learningRate = 5e-3f;
  trainConfig.verbose = true;
  const core::Trainer trainer(trainSet, trainConfig);

  core::TrainStats stats;
  auto model = trainer.train(core::Strategy::kOurs, &stats);
  std::printf("trained in %.1fs, final loss %.4f\n", stats.trainSeconds,
              stats.epochLoss.back());

  // --- 3. Evaluation ------------------------------------------------------
  TextTable table({"design", "R2 score", "runtime (s)"});
  for (const auto& eval : core::evaluateModel(*model, testSet)) {
    table.addRow({eval.design, TextTable::num(eval.r2),
                  TextTable::num(eval.runtimeSeconds)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
