// Exploring what the learning stack actually sees: the merged gate-type
// vocabulary, the levelized pin graph, per-pin features, timing-path
// cones, masked layout images and the arrival-time distributions of the
// two technology nodes (the paper's Figure 4/6 intuition, in numbers).

#include <algorithm>
#include <cstdio>

#include "eval/kde.hpp"
#include "features/design_data.hpp"
#include "features/feature_builder.hpp"
#include "features/path_extractor.hpp"

int main() {
  using namespace dagt;
  features::DataConfig config;
  config.designScale = 0.5f;
  const features::DataPipeline pipeline(config);

  std::printf("merged gate-type vocabulary: %d entries "
              "(%d @130nm + %d @7nm + 2 port pseudo-gates)\n",
              pipeline.vocabulary().size(),
              pipeline.library(netlist::TechNode::k130nm).numCells(),
              pipeline.library(netlist::TechNode::k7nm).numCells());
  std::printf("per-pin feature width: %lld (%lld numeric + one-hot)\n\n",
              static_cast<long long>(pipeline.featureDim()),
              static_cast<long long>(
                  features::FeatureBuilder::kNumericFeatures));

  for (const char* name : {"smallboom", "jpeg"}) {
    const auto d = pipeline.build(name);
    std::printf("%s @ %s\n", d.name.c_str(),
                netlist::techNodeName(d.node).c_str());
    std::printf("  pins %lld, endpoints %lld, pin-graph levels %d\n",
                static_cast<long long>(d.stats.numPins),
                static_cast<long long>(d.stats.numEndpoints),
                d.graph->numLevels());

    // Timing-path cone sizes.
    std::size_t minCone = SIZE_MAX, maxCone = 0, sumCone = 0;
    for (const auto& path : d.paths()) {
      minCone = std::min(minCone, path.conePins.size());
      maxCone = std::max(maxCone, path.conePins.size());
      sumCone += path.conePins.size();
    }
    std::printf("  fanin cones: min %zu, avg %zu, max %zu pins\n", minCone,
                sumCone / d.paths().size(), maxCone);

    // Arrival-time distribution.
    const auto kde = eval::kernelDensity(d.labels, 32);
    double mode = 0.0, best = 0.0;
    for (std::size_t i = 0; i < kde.x.size(); ++i) {
      if (kde.density[i] > best) {
        best = kde.density[i];
        mode = kde.x[i];
      }
    }
    const auto [minIt, maxIt] =
        std::minmax_element(d.labels.begin(), d.labels.end());
    std::printf("  sign-off arrival: %.0f .. %.0f ps, mode ~%.0f ps\n",
                *minIt, *maxIt, mode);
    std::printf("  optimizer: %d resized, %d buffers\n\n",
                d.optimizerReport.cellsResized,
                d.optimizerReport.buffersInserted);
  }

  std::printf("The 130nm and 7nm arrival modes differ by roughly an order "
              "of magnitude — the Figure 6 distribution gap that makes\n"
              "naive 130nm+7nm data merging fail and motivates "
              "disentanglement, alignment and the Bayesian readout.\n");
  return 0;
}
