// Using the EDA substrate directly (no machine learning): synthesize a
// design onto a technology node, place it, inspect congestion, run the
// timing optimizer and compare pre-routing vs sign-off static timing.
//
// This is the flow that generates the training labels; it is also a
// perfectly usable miniature PnR-and-STA playground on its own.

#include <algorithm>
#include <cstdio>

#include "designgen/design_suite.hpp"
#include "place/layout_maps.hpp"
#include "place/placer.hpp"
#include "route/global_router.hpp"
#include "sta/sta_engine.hpp"
#include "sta/timing_optimizer.hpp"
#include "sta/timing_report.hpp"

int main() {
  using namespace dagt;

  // 1. "Synthesis": generate the or1200 functionality and map it to 7nm.
  const designgen::DesignSuite suite(/*scale=*/0.5f);
  const auto lib = netlist::CellLibrary::makeNode(netlist::TechNode::k7nm);
  auto nl = suite.buildNetlist(suite.entry("or1200"), lib);
  const auto stats = nl.stats();
  std::printf("or1200 @ 7nm: %lld cells, %lld nets, %lld pins, %lld endpoints\n",
              static_cast<long long>(nl.numCells()),
              static_cast<long long>(nl.numNets()),
              static_cast<long long>(stats.numPins),
              static_cast<long long>(stats.numEndpoints));

  // 2. Placement.
  const auto placement = place::Placer::place(nl);
  std::printf("die %.1f x %.1f um, HPWL %.0f -> %.0f um after annealing\n",
              placement.dieArea.width(), placement.dieArea.height(),
              placement.initialHpwl, placement.finalHpwl);

  // 3. Congestion snapshot.
  const place::LayoutMaps maps(nl, placement, 32);
  float peakRudy = 0.0f;
  for (std::int32_t gy = 0; gy < 32; ++gy) {
    for (std::int32_t gx = 0; gx < 32; ++gx) {
      peakRudy = std::max(peakRudy, maps.rudyAt(gx, gy));
    }
  }
  std::printf("peak RUDY congestion %.2f, %zu macro blockages\n", peakRudy,
              placement.macros.size());

  // 4. Pre-routing STA (optimistic Elmore).
  const auto pre = sta::StaEngine::run(
      nl, nullptr, sta::RouteConfig{sta::WireModel::kPreRouting, 0.0f, 0.0f});
  std::printf("pre-routing worst arrival: %.1f ps\n", pre.worstArrival);

  // 5. Timing optimization (sizing + buffering) and sign-off STA.
  const auto report = sta::TimingOptimizer::optimize(nl, maps);
  const place::LayoutMaps routedMaps(nl, placement, 32);
  const auto signoff = sta::StaEngine::run(
      nl, &routedMaps, sta::RouteConfig{sta::WireModel::kRouted, 1.0f, 0.15f});
  std::printf("optimizer: %d cells resized, %d buffers inserted, worst "
              "%.1f -> %.1f ps\n",
              report.cellsResized, report.buffersInserted,
              report.worstArrivalBefore, report.worstArrivalAfter);
  std::printf("sign-off (routed) worst arrival: %.1f ps "
              "(pre-routing was %.1f ps optimistic)\n",
              signoff.worstArrival,
              signoff.worstArrival - pre.worstArrival);

  // 6. Global routing of the optimized netlist: wirelength, congestion
  //    hot spots and overflow.
  const auto routing = route::GlobalRouter::route(nl, placement);
  std::printf("\nglobal route: %.0f um total wire, peak edge utilization "
              "%.2f, %lld overflowed edges\n",
              routing.totalWirelength, routing.maxUtilization,
              static_cast<long long>(routing.overflowEdges));

  // 7. Slack against an auto-derived constraint + critical-path report.
  const auto constraints =
      sta::TimingConstraints::fromEstimate(signoff.worstArrival, 0.98f);
  const auto slack = sta::computeSlack(nl, signoff, constraints);
  std::printf("constraint %.1f ps: WNS %.1f ps, TNS %.1f ps, %lld "
              "violating endpoints\n",
              constraints.clockPeriod, slack.worstNegativeSlack,
              slack.totalNegativeSlack,
              static_cast<long long>(slack.violatingEndpoints));
  const auto critical = sta::traceCriticalPath(nl, signoff);
  std::printf("\n%s", sta::formatPathReport(nl, critical).c_str());

  // 8. Ten most critical endpoints.
  auto endpoints = nl.endpoints();
  std::sort(endpoints.begin(), endpoints.end(),
            [&](netlist::PinId a, netlist::PinId b) {
              return signoff.arrival[static_cast<std::size_t>(a)] >
                     signoff.arrival[static_cast<std::size_t>(b)];
            });
  std::printf("\ncritical endpoints (pin, signoff ps, preroute ps):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, endpoints.size());
       ++i) {
    const auto p = endpoints[i];
    std::printf("  pin %-6d %8.1f %8.1f\n", p,
                signoff.arrival[static_cast<std::size_t>(p)],
                pre.arrival[static_cast<std::size_t>(p)]);
  }
  return 0;
}
