// Cross-node transfer study (the paper's headline experiment, reduced
// scale): train the same predictor architecture under different transfer
// strategies on {130nm sources + one 7nm design} and compare held-out 7nm
// accuracy.
//
// Usage: cross_node_transfer [scale] [epochs]

#include <cstdio>
#include <cstdlib>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"

int main(int argc, char** argv) {
  using namespace dagt;
  const float scale = argc > 1 ? std::strtof(argv[1], nullptr) : 0.5f;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 24;
  Log::threshold() = LogLevel::kInfo;

  features::DataConfig dataConfig;
  dataConfig.designScale = scale;
  const features::DataPipeline pipeline(dataConfig);

  std::vector<features::DesignData> train;
  for (const char* name :
       {"smallboom", "jpeg", "linkruncca", "spiMaster", "usbf_device"}) {
    train.push_back(pipeline.build(name));
  }
  std::vector<features::DesignData> test;
  for (const char* name : {"arm9", "chacha", "hwacha", "or1200", "sha3"}) {
    test.push_back(pipeline.build(name));
  }
  auto pointers = [](const std::vector<features::DesignData>& v) {
    std::vector<const features::DesignData*> p;
    for (const auto& d : v) p.push_back(&d);
    return p;
  };
  core::TimingDataset trainSet(pointers(train));
  const core::TimingDataset testSet(pointers(test));
  // The paper's premise: data at the advanced node is scarce.
  trainSet.restrictEndpoints(train.front(), 48, /*seed=*/99);

  core::TrainConfig config;
  config.epochs = epochs;
  config.learningRate = 5e-3f;
  const core::Trainer trainer(trainSet, config);

  TextTable table({"strategy", "avg test R2", "train seconds"});
  for (const core::Strategy s :
       {core::Strategy::kAdvOnly, core::Strategy::kSimpleMerge,
        core::Strategy::kParamShare, core::Strategy::kPretrainFinetune,
        core::Strategy::kOurs}) {
    core::TrainStats stats;
    auto model = trainer.train(s, &stats);
    double sum = 0.0;
    for (const auto& eval : core::evaluateModel(*model, testSet)) {
      sum += eval.r2;
    }
    table.addRow({core::strategyName(s), TextTable::num(sum / 5.0),
                  TextTable::num(stats.trainSeconds, 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
