// Extension beyond the paper's evaluation: transfer from TWO preceding
// nodes at once. The paper's conclusion frames the method as leveraging
// "abundant data from preceding technology nodes" — here the source pool
// mixes 130nm and 45nm designs while the target stays 7nm.
//
// The merged gate-type vocabulary, the node-based contrastive loss and the
// amortized prior all extend naturally: every source batch is contrasted
// against the 7nm target batch, and the design-dependent distributions of
// all nodes are pulled together by the CMD loss.

#include <cstdio>

#include "common/logging.hpp"
#include "common/table.hpp"
#include "core/trainer.hpp"
#include "features/design_data.hpp"

int main() {
  using namespace dagt;
  using netlist::TechNode;
  Log::threshold() = LogLevel::kInfo;

  features::DataConfig dataConfig;
  dataConfig.designScale = 0.5f;
  dataConfig.nodes = {TechNode::k130nm, TechNode::k7nm, TechNode::k45nm};
  const features::DataPipeline pipeline(dataConfig);

  // Target-node design plus sources at two preceding nodes. The 45nm
  // sources reuse suite functionalities mapped to the intermediate node
  // (same design-dependent knowledge, third node-dependent flavor).
  std::vector<features::DesignData> train;
  train.push_back(pipeline.build("smallboom"));        // 7nm target
  train.push_back(pipeline.build("jpeg"));             // 130nm source
  train.push_back(pipeline.build("linkruncca"));       // 130nm source
  for (const char* name : {"spiMaster", "usbf_device"}) {
    designgen::DesignEntry entry = pipeline.suite().entry(name);
    entry.node = TechNode::k45nm;                      // remap to 45nm
    entry.spec.name = std::string(name) + "_45";
    train.push_back(pipeline.buildCustom(entry));      // 45nm source
  }

  std::vector<features::DesignData> test;
  for (const char* name : {"arm9", "chacha", "hwacha", "or1200", "sha3"}) {
    test.push_back(pipeline.build(name));
  }

  auto pointers = [](const std::vector<features::DesignData>& v) {
    std::vector<const features::DesignData*> p;
    for (const auto& d : v) p.push_back(&d);
    return p;
  };
  core::TimingDataset trainSet(pointers(train));
  const core::TimingDataset testSet(pointers(test));
  trainSet.restrictEndpoints(train.front(), 48, 99);

  core::TrainConfig config;
  config.epochs = 24;
  config.learningRate = 5e-3f;
  const core::Trainer trainer(trainSet, config);

  std::printf("sources: jpeg+linkruncca @130nm, spiMaster+usbf_device @45nm;"
              " target: smallboom @7nm (48 endpoints)\n\n");
  TextTable table({"strategy", "avg test R2", "train s"});
  for (const core::Strategy s :
       {core::Strategy::kAdvOnly, core::Strategy::kOurs}) {
    core::TrainStats stats;
    auto model = trainer.train(s, &stats);
    double sum = 0.0;
    for (const auto& eval : core::evaluateModel(*model, testSet)) {
      sum += eval.r2;
    }
    table.addRow({core::strategyName(s), TextTable::num(sum / 5.0),
                  TextTable::num(stats.trainSeconds, 1)});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
